package social

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// The store stripes its corpus across N shards keyed by CreatedAt time
// bucket: bucket b = floor(CreatedAt / shardBucketNanos) lives on shard
// b mod N. Each shard publishes an immutable snapshot of its time, tag
// and term indices behind an atomic pointer, so readers run entirely
// lock-free — they load one coherent snapshot per shard and stream it —
// while writers serialize only against other writers of the same
// stripe: a successor snapshot is built aside and committed with a
// single pointer swap (RCU-style copy-on-write).

// shardBucketNanos is the width of one CreatedAt time bucket (one UTC
// day). Posts of the same day always share a shard; consecutive days
// round-robin across shards, so a corpus spanning weeks spreads evenly
// at any stripe count.
const shardBucketNanos = int64(24 * time.Hour)

// bucketOf maps a timestamp to its time bucket. Floor division keeps
// pre-1970 timestamps (negative UnixNano) in well-defined buckets.
func bucketOf(t time.Time) int64 {
	n := t.UnixNano()
	b := n / shardBucketNanos
	if n < 0 && n%shardBucketNanos != 0 {
		b--
	}
	return b
}

// shardCompactThreshold bounds the delta generation of a snapshot: once
// a commit would push the delta past this many posts, the commit folds
// base and delta into a fresh base instead. Copy-on-write makes every
// commit pay for the structures it replaces, so the threshold is the
// knob between write cost and read fan-in: small commits copy O(delta)
// map entries instead of O(shard), readers merge at most two sorted
// sources per posting list, and the O(shard) fold is amortized over the
// threshold's worth of commits. A var only so tests can lower it to
// exercise compaction on small corpora.
var shardCompactThreshold = 1024

// shardGen is one immutable index generation: a (CreatedAt, ID)-sorted
// time index plus tag and term posting maps over a disjoint set of
// posts. Generations are never mutated after publication — writers
// build successors aside — so any goroutine may read one without
// holding a lock. The posting lists double as the generation's token
// cache: a post carries term t iff it appears in byTerm[t], so
// membership questions (the must-term residual filter) are answered by
// sorted-list seeks instead of per-post term-set maps — one fewer
// O(shard) map to copy on every fold, and the exact structure the
// snapshot sidecar persists (see sidecar.go).
type shardGen struct {
	byTime []*Post
	byTag  map[string][]*Post
	byTerm map[string][]*Post
}

// emptyGen is the shared zero generation. Lookups on its nil maps are
// well-defined (a nil map reads as empty), so fresh shards and
// just-compacted snapshots alias it instead of allocating.
var emptyGen = &shardGen{}

// shardSnapshot is one published version of a shard: a large compacted
// base generation plus a small delta generation holding the most recent
// commits. The two generations partition the shard's posts, every
// posting list is sorted within its generation, and both are immutable
// — a reader that loaded the snapshot owns a coherent view of the whole
// stripe for as long as it keeps the pointer, regardless of how many
// commits land meanwhile.
type shardSnapshot struct {
	base, delta *shardGen
}

// emptySnapshot backs freshly constructed shards.
var emptySnapshot = &shardSnapshot{base: emptyGen, delta: emptyGen}

// shard is one stripe of the Store. mu is a writer–writer lock only: it
// serializes successor construction and the commit swap against other
// writers of the same stripe. Readers never take it — they load snap.
type shard struct {
	mu   sync.Mutex
	snap atomic.Pointer[shardSnapshot]
}

func newShard() *shard {
	sh := &shard{}
	sh.snap.Store(emptySnapshot)
	return sh
}

// view returns the shard's current published snapshot. Safe to call
// from any goroutine; the result never changes under the caller.
func (sh *shard) view() *shardSnapshot { return sh.snap.Load() }

// commit merges a validated, (CreatedAt, ID)-sorted sub-batch into the
// shard by publishing a successor snapshot: small commits extend the
// delta generation (copying O(delta) index entries), and once the delta
// would outgrow shardCompactThreshold the commit folds base, delta and
// batch into a fresh base. Readers holding the previous snapshot are
// unaffected either way. terms[i] is posts[i]'s term set, tokenized by
// the caller outside the lock. Caller holds sh.mu.
func (sh *shard) commit(posts []*Post, terms []map[string]bool) {
	cur := sh.snap.Load()
	var next *shardSnapshot
	if len(cur.delta.byTime)+len(posts) >= shardCompactThreshold {
		next = &shardSnapshot{base: foldGens(cur.base, cur.delta, posts, terms), delta: emptyGen}
	} else {
		next = &shardSnapshot{base: cur.base, delta: foldGens(cur.delta, emptyGen, posts, terms)}
	}
	sh.snap.Store(next)
}

// foldGens builds the immutable generation a ⊎ b ⊎ posts. b may be
// emptyGen (the common extend-the-delta case). Existing posting lists
// are shared untouched where possible and copied where the fold extends
// them — never mutated — and the new posts' lists merge in sorted, so
// no query-time sort is ever needed.
func foldGens(a, b *shardGen, posts []*Post, terms []map[string]bool) *shardGen {
	g := &shardGen{
		byTime: mergeSorted(mergeSorted(a.byTime, b.byTime), posts),
		byTag:  make(map[string][]*Post, len(a.byTag)+len(b.byTag)),
		byTerm: make(map[string][]*Post, len(a.byTerm)+len(b.byTerm)),
	}
	for k, v := range a.byTag {
		g.byTag[k] = v
	}
	for k, v := range b.byTag {
		g.byTag[k] = mergeSorted(g.byTag[k], v)
	}
	for k, v := range a.byTerm {
		g.byTerm[k] = v
	}
	for k, v := range b.byTerm {
		g.byTerm[k] = mergeSorted(g.byTerm[k], v)
	}

	// Per-key additions inherit the batch's (CreatedAt, ID) order, so
	// each touched posting list needs one sorted merge, not a re-sort.
	tagAdds := make(map[string][]*Post)
	termAdds := make(map[string][]*Post)
	for i, p := range posts {
		// Dedupe per post: a repeated hashtag must contribute one
		// posting, or the post would surface twice in tag queries.
		postTags := make(map[string]bool)
		for _, tag := range p.Hashtags() {
			tag = nlp.Normalize(tag)
			if postTags[tag] {
				continue
			}
			postTags[tag] = true
			tagAdds[tag] = append(tagAdds[tag], p)
		}
		for term := range terms[i] {
			termAdds[term] = append(termAdds[term], p)
		}
	}
	for tag, adds := range tagAdds {
		g.byTag[tag] = mergeSorted(g.byTag[tag], adds)
	}
	for term, adds := range termAdds {
		g.byTerm[term] = mergeSorted(g.byTerm[term], adds)
	}
	return g
}

// postingCursor is one sorted posting list with a monotone read
// position, answering membership tests for an ascending stream of
// candidate keys. seek gallops (exponential probe, then binary search)
// from the last position, so a scan whose candidates are dense in the
// list costs O(1) amortized per candidate and a sparse one costs
// O(log gap) — never a restart from the top.
type postingCursor struct {
	plist []*Post
	pos   int
}

// seek advances the cursor to the first posting ≥ p and reports whether
// it is exactly p (pointer identity suffices: a (CreatedAt, ID) key
// maps to one *Post object store-wide). Candidates must arrive in
// ascending (CreatedAt, ID) order.
func (c *postingCursor) seek(p *Post) bool {
	plist := c.plist
	n := len(plist)
	i := c.pos
	if i >= n {
		return false
	}
	if postLess(plist[i], p) {
		// Gallop: double the probe until it lands at or past p, then
		// binary-search the last octave.
		bound := 1
		for i+bound < n && postLess(plist[i+bound], p) {
			bound <<= 1
		}
		lo := i + bound>>1 + 1 // everything at or below i+bound/2 is < p
		hi := i + bound
		if hi > n {
			hi = n
		}
		i = lo + sort.Search(hi-lo, func(k int) bool { return !postLess(plist[lo+k], p) })
	}
	c.pos = i
	if i < n && plist[i] == p {
		c.pos = i + 1
		return true
	}
	return false
}

// exhausted reports that no further candidate can match.
func (c *postingCursor) exhausted() bool { return c.pos >= len(c.plist) }

// termResidual proves that candidates carry every must term by seeking
// the terms' sorted posting lists instead of consulting per-post token
// maps. A post lives in exactly one generation and each generation's
// byTerm[t] holds exactly the posts carrying t, so p has t iff one of
// the two generations' lists contains p. Cursors advance monotonically
// with the candidate stream (matchIter yields ascending keys), making
// the whole residual scan cost O(postings visited), not
// O(candidates · terms) map lookups.
type termResidual struct {
	curs []postingCursor // two per term: base list, then delta list
}

func newTermResidual(sn *shardSnapshot, must []string) *termResidual {
	tr := &termResidual{curs: make([]postingCursor, 0, 2*len(must))}
	for _, m := range must {
		tr.curs = append(tr.curs,
			postingCursor{plist: sn.base.byTerm[m]},
			postingCursor{plist: sn.delta.byTerm[m]})
	}
	return tr
}

// hasAll reports whether p carries every must term.
func (tr *termResidual) hasAll(p *Post) bool {
	for i := 0; i < len(tr.curs); i += 2 {
		if !tr.curs[i].seek(p) && !tr.curs[i+1].seek(p) {
			return false
		}
	}
	return true
}

// timeBounds narrows a (CreatedAt, ID)-sorted posting list to the
// [since, until) query window by binary search, so a bounded query
// never scans postings outside its window — the window cost is
// O(log postings) instead of a full-list scan.
func timeBounds(plist []*Post, since, until time.Time) (lo, hi int) {
	lo, hi = 0, len(plist)
	if !since.IsZero() {
		lo = sort.Search(len(plist), func(i int) bool { return !plist[i].CreatedAt.Before(since) })
	}
	if !until.IsZero() {
		hi = sort.Search(len(plist), func(i int) bool { return !plist[i].CreatedAt.Before(until) })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// shardIter lazily yields one snapshot's query matches in (CreatedAt,
// ID) order, strictly after the seek cursor. It is the streaming half
// of the sharded search: the store pulls MaxResults+1 posts off the
// merged shard streams and stops, so producing a page costs
// O(page + seek) rather than O(matches). Sources reuse store.go's
// mergeSource/mergeHeap posting-list heap, with each source's plist
// pre-narrowed to the query window. The iterator reads only the
// immutable snapshot it was built from — no lock is held or needed
// during its lifetime.
type shardIter struct {
	single  mergeSource // fast path: zero or one source, no heap
	h       mergeHeap   // ≥2 sources: lazy k-way union
	useHeap bool
	keep    func(*Post) bool // residual filter; nil keeps everything
	last    *Post            // dedup guard across overlapping tag lists
	scanned int              // posting entries pulled, kept or not (cost attribution)
}

// next returns the iterator's next match, or nil when exhausted.
func (it *shardIter) next() *Post {
	for {
		var p *Post
		if it.useHeap {
			if len(it.h) == 0 {
				return nil
			}
			src := &it.h[0]
			p = src.plist[src.pos]
			if src.pos+1 < len(src.plist) {
				src.pos++
				heap.Fix(&it.h, 0)
			} else {
				heap.Pop(&it.h)
			}
		} else {
			if it.single.pos >= len(it.single.plist) {
				return nil
			}
			p = it.single.plist[it.single.pos]
			it.single.pos++
		}
		it.scanned++
		// A post carrying several queried tags appears in multiple
		// source lists; equal heads surface back to back in the merge,
		// so one-deep memory dedupes the union.
		if p == it.last {
			continue
		}
		it.last = p
		if it.keep != nil && !it.keep(p) {
			continue
		}
		return p
	}
}

// genLists appends the non-empty posting lists of one key from both
// generations. A post lives in exactly one generation, so the two lists
// are disjoint and each is sorted — ready for the k-way merge.
func (sn *shardSnapshot) genLists(lists [][]*Post, pick func(*shardGen) []*Post) [][]*Post {
	if p := pick(sn.base); len(p) > 0 {
		lists = append(lists, p)
	}
	if p := pick(sn.delta); len(p) > 0 {
		lists = append(lists, p)
	}
	return lists
}

// matchIter builds the snapshot's lazy match stream for a query. The
// candidate-set preference mirrors the pre-shard matcher — union of tag
// postings, else the rarest must-term's postings, else the time index —
// but every candidate list is narrowed to the query window AND the
// keyset cursor by binary search before any post is touched. Each key
// contributes up to two sorted sources (base and delta generation).
// cur == nil starts at the top of the window.
func (sn *shardSnapshot) matchIter(q *Query, tags, must []string, cur *Cursor) *shardIter {
	it := &shardIter{}

	var lists [][]*Post
	switch {
	case len(tags) > 0:
		for _, tag := range tags {
			tag := tag
			lists = sn.genLists(lists, func(g *shardGen) []*Post { return g.byTag[tag] })
		}
	case len(must) > 0:
		// Walk the rarest term's postings; the residual filter proves
		// the remaining terms, so cost tracks the rarest term, not the
		// corpus.
		shortest, shortestLen := -1, 0
		for i, m := range must {
			n := len(sn.base.byTerm[m]) + len(sn.delta.byTerm[m])
			if n == 0 {
				return it // a missing term matches nothing in this shard
			}
			if shortest < 0 || n < shortestLen {
				shortest, shortestLen = i, n
			}
		}
		m := must[shortest]
		lists = sn.genLists(lists, func(g *shardGen) []*Post { return g.byTerm[m] })
	default:
		lists = sn.genLists(lists, func(g *shardGen) []*Post { return g.byTime })
	}

	srcs := make([]mergeSource, 0, len(lists))
	for _, plist := range lists {
		lo, hi := timeBounds(plist, q.Since, q.Until)
		if cur != nil {
			// Keyset seek: resume strictly after the cursor key.
			if c := sort.Search(len(plist), func(i int) bool { return cur.Before(plist[i]) }); c > lo {
				lo = c
			}
		}
		if lo < hi {
			srcs = append(srcs, mergeSource{plist: plist[lo:hi]})
		}
	}
	switch len(srcs) {
	case 0: // zero-valued single source is already exhausted
	case 1:
		// Like mergeKSorted's single-list fast path: one source needs
		// no heap, the narrowed list is streamed directly.
		it.single = srcs[0]
	default:
		it.h = mergeHeap(srcs)
		heap.Init(&it.h)
		it.useHeap = true
	}

	region := q.Region
	// The residual filter proves whatever the candidate lists do not:
	// with tag candidates every must term needs proof; with term
	// candidates only the non-walked terms do (a single-term query needs
	// none — its candidates come from that term's own postings). Passing
	// the walked term too is harmless: its candidates sit at the cursor,
	// so the extra seek is O(1).
	needTerms := len(must) > 0 && (len(tags) > 0 || len(must) > 1)
	if region != "" || needTerms {
		var tr *termResidual
		if needTerms {
			tr = newTermResidual(sn, must)
		}
		it.keep = func(p *Post) bool {
			if region != "" && p.Region != region {
				return false
			}
			return tr == nil || tr.hasAll(p)
		}
	}
	return it
}

// countMatches returns the snapshot's total query matches. TotalMatches
// is cursor-independent, so the count walks the full window — except
// where sorted postings make it O(log n) by bound subtraction: the
// unfiltered time index, and single-key tag or term queries without a
// residual filter (the per-shard per-tag counts are the posting-list
// lengths themselves, maintained sorted at insert). Everything else
// walks the narrowed candidate postings — never a materialized slice.
func (sn *shardSnapshot) countMatches(q *Query, tags, must []string) int {
	if q.Region == "" {
		switch {
		case len(tags) == 0 && len(must) == 0:
			return sn.countByBounds(q, func(g *shardGen) []*Post { return g.byTime })
		case len(tags) == 1 && len(must) == 0:
			return sn.countByBounds(q, func(g *shardGen) []*Post { return g.byTag[tags[0]] })
		case len(tags) == 0 && len(must) == 1:
			return sn.countByBounds(q, func(g *shardGen) []*Post { return g.byTerm[must[0]] })
		case len(tags) == 0 && len(must) > 1:
			return sn.countTermIntersection(q, must)
		case len(tags) == 2 && len(must) == 0:
			return sn.countTagUnion2(q, tags)
		}
	}
	it := sn.matchIter(q, tags, must, nil)
	n := 0
	for it.next() != nil {
		n++
	}
	return n
}

// countTermIntersection counts the posts carrying every must term by
// intersecting the terms' posting lists per generation — a post's
// postings live entirely in its own generation, so the shard total is
// the sum of two independent intersections. Cost is the shortest list's
// window times a galloping seek per other list, sublinear in the
// candidate count the residual-filter walk would have paid.
func (sn *shardSnapshot) countTermIntersection(q *Query, must []string) int {
	n := 0
	for _, g := range []*shardGen{sn.base, sn.delta} {
		n += intersectCount(g, q, must)
	}
	return n
}

// intersectCount intersects one generation's must-term posting lists,
// each pre-narrowed to the query window, pivoting on the shortest.
func intersectCount(g *shardGen, q *Query, must []string) int {
	lists := make([][]*Post, len(must))
	for i, m := range must {
		plist := g.byTerm[m]
		lo, hi := timeBounds(plist, q.Since, q.Until)
		if lo >= hi {
			return 0
		}
		lists[i] = plist[lo:hi]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	pivot := lists[0]
	curs := make([]postingCursor, len(lists)-1)
	for i, plist := range lists[1:] {
		curs[i] = postingCursor{plist: plist}
	}
	n := 0
outer:
	for _, p := range pivot {
		for i := range curs {
			if !curs[i].seek(p) {
				if curs[i].exhausted() {
					// Nothing later in the pivot can match either.
					break outer
				}
				continue outer
			}
		}
		n++
	}
	return n
}

// countTagUnion2 counts a two-tag union by inclusion–exclusion per
// generation: |A ∪ B| = |A| + |B| − |A ∩ B|, with |A| and |B| read off
// the window bounds and the intersection walked with a galloping cursor
// over the longer list. Sublinear in the union size whenever the tags
// barely overlap — the common case the heap-merge walk paid full price
// for.
func (sn *shardSnapshot) countTagUnion2(q *Query, tags []string) int {
	n := 0
	for _, g := range []*shardGen{sn.base, sn.delta} {
		a, b := g.byTag[tags[0]], g.byTag[tags[1]]
		alo, ahi := timeBounds(a, q.Since, q.Until)
		blo, bhi := timeBounds(b, q.Since, q.Until)
		n += (ahi - alo) + (bhi - blo)
		aw, bw := a[alo:ahi], b[blo:bhi]
		if len(aw) > len(bw) {
			aw, bw = bw, aw
		}
		cur := postingCursor{plist: bw}
		for _, p := range aw {
			if cur.seek(p) {
				n--
			} else if cur.exhausted() {
				break
			}
		}
	}
	return n
}

// countByBounds subtracts window bounds on one key's posting lists in
// both generations. Posting lists hold each post once per key (repeated
// hashtags dedupe at insert), so the subtraction is exact.
func (sn *shardSnapshot) countByBounds(q *Query, pick func(*shardGen) []*Post) int {
	n := 0
	for _, g := range []*shardGen{sn.base, sn.delta} {
		lo, hi := timeBounds(pick(g), q.Since, q.Until)
		n += hi - lo
	}
	return n
}
