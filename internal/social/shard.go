package social

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// The store stripes its corpus across N shards keyed by CreatedAt time
// bucket: bucket b = floor(CreatedAt / shardBucketNanos) lives on shard
// b mod N. Each shard carries its own lock and its own time, tag and
// term indices, so writers contend only for the stripe their batch's
// timestamps fall in, and search fans out across stripes and k-way
// merges the per-shard streams back into one (CreatedAt, ID) order.

// shardBucketNanos is the width of one CreatedAt time bucket (one UTC
// day). Posts of the same day always share a shard; consecutive days
// round-robin across shards, so a corpus spanning weeks spreads evenly
// at any stripe count.
const shardBucketNanos = int64(24 * time.Hour)

// bucketOf maps a timestamp to its time bucket. Floor division keeps
// pre-1970 timestamps (negative UnixNano) in well-defined buckets.
func bucketOf(t time.Time) int64 {
	n := t.UnixNano()
	b := n / shardBucketNanos
	if n < 0 && n%shardBucketNanos != 0 {
		b--
	}
	return b
}

// shard is one lock stripe of a Store: the posts of every time bucket
// assigned to it, indexed exactly like the pre-shard store. byTime,
// byTag and byTerm keep their posting lists in (CreatedAt, ID) order,
// so per-shard streams merge across shards without any query-time
// sort. mu guards every field.
type shard struct {
	mu     sync.RWMutex
	byTime []*Post
	byTag  map[string][]*Post
	byTerm map[string][]*Post
	terms  map[string]map[string]bool // post ID → term set (precomputed)
}

func newShard() *shard {
	return &shard{
		byTag:  make(map[string][]*Post),
		byTerm: make(map[string][]*Post),
		terms:  make(map[string]map[string]bool),
	}
}

// insertLocked merges a validated, (CreatedAt, ID)-sorted sub-batch
// into the shard's indices with one merge per touched index. terms[i]
// is posts[i]'s term set, tokenized by the caller outside any lock.
// Caller holds the shard write lock.
func (sh *shard) insertLocked(posts []*Post, terms []map[string]bool) {
	sh.byTime = mergeSorted(sh.byTime, posts)

	touchedTags := make(map[string]bool)
	touchedTerms := make(map[string]bool)
	for i, p := range posts {
		// Dedupe per post: a repeated hashtag must contribute one
		// posting, or the post would surface twice in tag queries.
		postTags := make(map[string]bool)
		for _, tag := range p.Hashtags() {
			tag = nlp.Normalize(tag)
			if postTags[tag] {
				continue
			}
			postTags[tag] = true
			sh.byTag[tag] = append(sh.byTag[tag], p)
			touchedTags[tag] = true
		}
		sh.terms[p.ID] = terms[i]
		for term := range terms[i] {
			sh.byTerm[term] = append(sh.byTerm[term], p)
			touchedTerms[term] = true
		}
	}
	for tag := range touchedTags {
		restoreOrder(sh.byTag[tag])
	}
	for term := range touchedTerms {
		restoreOrder(sh.byTerm[term])
	}
}

// hasAllTerms reports whether the post carries every term. Caller holds
// at least the shard read lock.
func (sh *shard) hasAllTerms(id string, must []string) bool {
	terms := sh.terms[id]
	for _, m := range must {
		if !terms[m] {
			return false
		}
	}
	return true
}

// timeBounds narrows a (CreatedAt, ID)-sorted posting list to the
// [since, until) query window by binary search, so a bounded query
// never scans postings outside its window — the window cost is
// O(log postings) instead of a full-list scan.
func timeBounds(plist []*Post, since, until time.Time) (lo, hi int) {
	lo, hi = 0, len(plist)
	if !since.IsZero() {
		lo = sort.Search(len(plist), func(i int) bool { return !plist[i].CreatedAt.Before(since) })
	}
	if !until.IsZero() {
		hi = sort.Search(len(plist), func(i int) bool { return !plist[i].CreatedAt.Before(until) })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// shardIter lazily yields one shard's query matches in (CreatedAt, ID)
// order, strictly after the seek cursor. It is the streaming half of
// the sharded search: the store pulls MaxResults+1 posts off the
// merged shard streams and stops, so producing a page costs
// O(page + seek) rather than O(matches). Sources reuse store.go's
// mergeSource/mergeHeap posting-list heap, with each source's plist
// pre-narrowed to the query window. The shard read lock must be held
// for the iterator's whole lifetime.
type shardIter struct {
	single  mergeSource // fast path: zero or one source, no heap
	h       mergeHeap   // ≥2 sources: lazy k-way union
	useHeap bool
	keep    func(*Post) bool // residual filter; nil keeps everything
	last    *Post            // dedup guard across overlapping tag lists
}

// next returns the iterator's next match, or nil when exhausted.
func (it *shardIter) next() *Post {
	for {
		var p *Post
		if it.useHeap {
			if len(it.h) == 0 {
				return nil
			}
			src := &it.h[0]
			p = src.plist[src.pos]
			if src.pos+1 < len(src.plist) {
				src.pos++
				heap.Fix(&it.h, 0)
			} else {
				heap.Pop(&it.h)
			}
		} else {
			if it.single.pos >= len(it.single.plist) {
				return nil
			}
			p = it.single.plist[it.single.pos]
			it.single.pos++
		}
		// A post carrying several queried tags appears in multiple
		// source lists; equal heads surface back to back in the merge,
		// so one-deep memory dedupes the union.
		if p == it.last {
			continue
		}
		it.last = p
		if it.keep != nil && !it.keep(p) {
			continue
		}
		return p
	}
}

// matchIter builds the shard's lazy match stream for a query. The
// candidate-set preference mirrors the pre-shard matchLocked — union
// of tag postings, else the rarest must-term's postings, else the time
// index — but every candidate list is narrowed to the query window AND
// the keyset cursor by binary search before any post is touched.
// cur == nil starts at the top of the window. Caller holds at least
// the shard read lock and must keep holding it while iterating.
func (sh *shard) matchIter(q *Query, tags, must []string, cur *Cursor) *shardIter {
	it := &shardIter{}

	var lists [][]*Post
	switch {
	case len(tags) > 0:
		for _, tag := range tags {
			if plist := sh.byTag[tag]; len(plist) > 0 {
				lists = append(lists, plist)
			}
		}
	case len(must) > 0:
		// Walk the rarest term's postings; the residual filter proves
		// the remaining terms, so cost tracks the rarest term, not the
		// corpus.
		shortest := -1
		for i, m := range must {
			plist, ok := sh.byTerm[m]
			if !ok || len(plist) == 0 {
				return it // a missing term matches nothing in this shard
			}
			if shortest < 0 || len(plist) < len(sh.byTerm[must[shortest]]) {
				shortest = i
			}
		}
		lists = append(lists, sh.byTerm[must[shortest]])
	default:
		if len(sh.byTime) > 0 {
			lists = append(lists, sh.byTime)
		}
	}

	srcs := make([]mergeSource, 0, len(lists))
	for _, plist := range lists {
		lo, hi := timeBounds(plist, q.Since, q.Until)
		if cur != nil {
			// Keyset seek: resume strictly after the cursor key.
			if c := sort.Search(len(plist), func(i int) bool { return cur.Before(plist[i]) }); c > lo {
				lo = c
			}
		}
		if lo < hi {
			srcs = append(srcs, mergeSource{plist: plist[lo:hi]})
		}
	}
	switch len(srcs) {
	case 0: // zero-valued single source is already exhausted
	case 1:
		// Like mergeKSorted's single-list fast path: one source needs
		// no heap, the narrowed list is streamed directly.
		it.single = srcs[0]
	default:
		it.h = mergeHeap(srcs)
		heap.Init(&it.h)
		it.useHeap = true
	}

	region := q.Region
	needTerms := len(must) > 0
	if region != "" || needTerms {
		it.keep = func(p *Post) bool {
			if region != "" && p.Region != region {
				return false
			}
			return !needTerms || sh.hasAllTerms(p.ID, must)
		}
	}
	return it
}

// countMatches returns the shard's total query matches. TotalMatches
// is cursor-independent, so the count walks the full window: O(log n)
// by bound subtraction on the unfiltered time index, a walk of the
// narrowed candidate postings otherwise — never a materialized slice.
// Caller holds at least the shard read lock.
func (sh *shard) countMatches(q *Query, tags, must []string) int {
	if len(tags) == 0 && len(must) == 0 && q.Region == "" {
		lo, hi := timeBounds(sh.byTime, q.Since, q.Until)
		return hi - lo
	}
	it := sh.matchIter(q, tags, must, nil)
	n := 0
	for it.next() != nil {
		n++
	}
	return n
}
