package social

import (
	"fmt"
	"strings"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// Region is a coarse market region tag attached to posts.
type Region string

// Regions used by the synthetic corpus.
const (
	RegionEurope       Region = "EU"
	RegionNorthAmerica Region = "NA"
	RegionAsiaPacific  Region = "APAC"
	RegionOther        Region = "OTHER"
)

// Metrics carries the engagement counters of a post — the raw material
// of the Social Attraction Index.
type Metrics struct {
	Views   int `json:"views"`
	Likes   int `json:"likes"`
	Reposts int `json:"reposts"`
	Replies int `json:"replies"`
}

// Interactions returns the total active engagement (likes + reposts +
// replies), as opposed to passive views.
func (m Metrics) Interactions() int { return m.Likes + m.Reposts + m.Replies }

// Post is one social-media post.
type Post struct {
	// ID is unique within a store.
	ID string `json:"id"`
	// Author is an opaque handle.
	Author string `json:"author"`
	// Text is the post body, hashtags included.
	Text string `json:"text"`
	// CreatedAt is the posting instant (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Region is the coarse origin region.
	Region Region `json:"region"`
	// Metrics carries the engagement counters.
	Metrics Metrics `json:"metrics"`
}

// Validate checks the minimal invariants a stored post must satisfy.
func (p *Post) Validate() error {
	if strings.TrimSpace(p.ID) == "" {
		return fmt.Errorf("social: post with empty ID")
	}
	if strings.TrimSpace(p.Text) == "" {
		return fmt.Errorf("social: post %s: empty text", p.ID)
	}
	if p.CreatedAt.IsZero() {
		return fmt.Errorf("social: post %s: zero timestamp", p.ID)
	}
	if p.Metrics.Views < 0 || p.Metrics.Likes < 0 || p.Metrics.Reposts < 0 || p.Metrics.Replies < 0 {
		return fmt.Errorf("social: post %s: negative engagement counter", p.ID)
	}
	return nil
}

// Hashtags returns the normalized hashtags of the post text.
func (p *Post) Hashtags() []string {
	return nlp.Hashtags(nlp.Tokenize(p.Text))
}

// Terms returns the normalized word and hashtag terms of the post text,
// for keyword matching.
func (p *Post) Terms() map[string]bool {
	tokens := nlp.Tokenize(p.Text)
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if t.Kind == nlp.TokenWord || t.Kind == nlp.TokenHashtag {
			set[nlp.Normalize(t.Text)] = true
		}
	}
	return set
}
