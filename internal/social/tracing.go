package social

import (
	"github.com/psp-framework/psp/internal/obs"
)

// SetTracer attaches (or, with nil, detaches) a span tracer, following
// the SetMetrics pattern: hot paths pay one atomic pointer load, and
// the nil tracer/span are full no-ops. Once attached, Search opens
// "store.search" spans carrying per-query cost attribution (stripes
// visited, posting entries scanned, delta sizes) and AddCountContext
// opens "store.add" spans with a "wal.append" child on durable stores.
func (s *Store) SetTracer(t *obs.Tracer) {
	s.trc.Store(t)
}

// Tracer returns the attached tracer (nil when untraced).
func (s *Store) Tracer() *obs.Tracer { return s.trc.Load() }

// ingestRef names the most recent recorded ingest span — the link the
// monitor uses to attach its delta run to the trace of the ingest that
// triggered it.
type ingestRef struct {
	traceID string
	spanID  string
}

// noteIngest publishes the ingest span reference for later linking.
// Only sampled (recorded) spans are worth linking to; the monitor's
// debounce coalesces batches, so the reference names the *last*
// recorded ingest before a flush — earlier batches of the same flush
// window share the delta run but not the trace link.
func (s *Store) noteIngest(span *obs.Span) {
	if !span.Sampled() {
		return
	}
	s.lastIngest.Store(&ingestRef{traceID: span.TraceID, spanID: span.SpanID})
}

// LastIngestTrace returns the (trace ID, span ID) of the most recent
// recorded ingest span, or empty strings when no traced ingest has
// happened. The monitor links its flush span to this reference so
// GET /v1/trace shows server → store → WAL → monitor as one trace.
func (s *Store) LastIngestTrace() (traceID, spanID string) {
	if ref := s.lastIngest.Load(); ref != nil {
		return ref.traceID, ref.spanID
	}
	return "", ""
}
