package social

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

// Client talks to a Server over HTTP and implements Searcher, giving the
// framework the same remote code path the paper's Twitter-based prototype
// had: URL building, pagination tokens, and a retry policy. Two classes
// of failure retry, both bounded by MaxRetries and cancellable through
// the call context:
//
//   - 429 rate limiting waits the server's Retry-After suggestion;
//   - transient failures — transport errors (connection refused/reset,
//     an injected fault.RoundTripper error) and 502/503/504 responses —
//     back off exponentially from RetryBase, capped at RetryMax, with
//     half-to-full jitter so a fleet of clients recovering together
//     does not re-stampede the backend in lockstep.
//
// Everything else (4xx, decode failures) fails immediately.
type Client struct {
	baseURL string
	httpc   *http.Client
	// MaxRetries bounds retries per call — rate-limit waits and
	// transient-failure backoffs combined (default 3).
	MaxRetries int
	// RetryBase is the first transient-failure backoff before jitter
	// (default 100ms); each further attempt doubles it.
	RetryBase time.Duration
	// RetryMax caps the transient-failure backoff before jitter
	// (default 2s).
	RetryMax time.Duration
	// sleep waits out one retry delay; injectable for tests. It must
	// honor ctx — a cancelled monitor run returns promptly instead of
	// serving out a Retry-After wait.
	sleep func(ctx context.Context, d time.Duration) error
	// jitter maps a backoff to the waited duration; injectable for
	// deterministic tests (defaults to half-to-full jitter).
	jitter func(d time.Duration) time.Duration
}

var _ Searcher = (*Client)(nil)

// NewClient builds a client for the API at baseURL (e.g.
// "http://127.0.0.1:8384"). A nil httpc uses a client with a 10 s
// timeout.
func NewClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{
		baseURL:    strings.TrimRight(baseURL, "/"),
		httpc:      httpc,
		MaxRetries: 3,
		RetryBase:  100 * time.Millisecond,
		RetryMax:   2 * time.Second,
		sleep:      ctxSleep,
		jitter:     defaultJitter,
	}
}

// ctxSleep waits d or until ctx cancels, whichever is first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// defaultJitter spreads a backoff across [d/2, d].
func defaultJitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// backoff is the pre-jitter transient-failure delay of the given
// attempt: RetryBase doubled per attempt, capped at RetryMax.
func (c *Client) backoff(attempt int) time.Duration {
	base, maxd := c.RetryBase, c.RetryMax
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if c.jitter != nil {
		d = c.jitter(d)
	}
	return d
}

// Search runs one paginated search call against the remote API,
// retrying rate limits and transient failures per the policy above.
func (c *Client) Search(ctx context.Context, q Query) (*Page, error) {
	u, err := c.searchURL(q)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("social: build request: %w", err)
		}
		// Correlate the backend request with the frontend one on every
		// attempt, retries included: the request ID ties access logs
		// together, the traceparent keeps a federated page one trace.
		if id := obs.RequestIDFrom(ctx); id != "" {
			req.Header.Set(obs.RequestIDHeader, id)
		}
		if tp := obs.TraceparentFrom(ctx); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		var retryAfter time.Duration
		var transient bool
		resp, err := c.httpc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				// The "transport failure" is our own cancelled context —
				// not worth a retry, and the caller wants the ctx error.
				return nil, ctx.Err()
			}
			err = fmt.Errorf("social: search request: %w", err)
			transient = true
		} else {
			var page *Page
			page, retryAfter, transient, err = decodeSearchResponse(resp)
			if err == nil {
				return page, nil
			}
		}
		if attempt >= c.MaxRetries || (!transient && retryAfter <= 0) {
			return nil, err
		}
		wait := retryAfter
		reason := "rate_limited"
		if wait <= 0 {
			wait = c.backoff(attempt)
			reason = "transient"
		}
		obs.SpanFrom(ctx).Event("retry",
			obs.SpanAttr{Key: "attempt", Value: strconv.Itoa(attempt + 1)},
			obs.SpanAttr{Key: "reason", Value: reason},
			obs.SpanAttr{Key: "wait", Value: wait.String()})
		if serr := c.sleep(ctx, wait); serr != nil {
			return nil, serr
		}
	}
}

// Health checks the server's health endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v2/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("social: health request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("social: health status %d", resp.StatusCode)
	}
	return nil
}

func (c *Client) searchURL(q Query) (string, error) {
	v := url.Values{}
	if len(q.AnyTags) > 0 {
		v.Set("tags", strings.Join(q.AnyTags, ","))
	}
	if len(q.MustTerms) > 0 {
		v.Set("must", strings.Join(q.MustTerms, ","))
	}
	if q.Region != "" {
		v.Set("region", string(q.Region))
	}
	if !q.Since.IsZero() {
		v.Set("since", q.Since.UTC().Format(time.RFC3339))
	}
	if !q.Until.IsZero() {
		v.Set("until", q.Until.UTC().Format(time.RFC3339))
	}
	if q.MaxResults > 0 {
		v.Set("max_results", strconv.Itoa(q.MaxResults))
	}
	if q.PageToken != "" {
		v.Set("next_token", q.PageToken)
	}
	if q.SkipTotal {
		v.Set("skip_total", "1")
	}
	return c.baseURL + "/v2/search?" + v.Encode(), nil
}

// decodeSearchResponse parses a search response. On 429 it returns the
// suggested retry delay with a non-nil error; transient reports whether
// the failure is worth a backoff-and-retry (gateway-shaped 5xx).
func decodeSearchResponse(resp *http.Response) (page *Page, retryAfter time.Duration, transient bool, err error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, true, fmt.Errorf("social: read response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var sr searchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return nil, 0, false, fmt.Errorf("social: decode response: %w", err)
		}
		return &Page{
			Posts:        sr.Data,
			NextToken:    sr.Meta.NextToken,
			TotalMatches: sr.Meta.TotalMatches,
		}, 0, false, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return nil, retry, true, fmt.Errorf("social: rate limited (retry after %s)", retry)
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		var er errorResponse
		_ = json.Unmarshal(body, &er)
		if er.Error == "" {
			er.Error = http.StatusText(resp.StatusCode)
		}
		return nil, 0, true, fmt.Errorf("social: API status %d: %s", resp.StatusCode, er.Error)
	default:
		var er errorResponse
		_ = json.Unmarshal(body, &er)
		if er.Error == "" {
			er.Error = http.StatusText(resp.StatusCode)
		}
		return nil, 0, false, fmt.Errorf("social: API status %d: %s", resp.StatusCode, er.Error)
	}
}
