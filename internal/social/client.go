package social

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a Server over HTTP and implements Searcher, giving the
// framework the same remote code path the paper's Twitter-based prototype
// had: URL building, pagination tokens, 429 back-off and transport error
// handling.
type Client struct {
	baseURL string
	httpc   *http.Client
	// MaxRetries bounds 429 retries per call (default 3).
	MaxRetries int
	// sleep is injectable for tests; defaults to time.Sleep.
	sleep func(time.Duration)
}

var _ Searcher = (*Client)(nil)

// NewClient builds a client for the API at baseURL (e.g.
// "http://127.0.0.1:8384"). A nil httpc uses a client with a 10 s
// timeout.
func NewClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{
		baseURL:    strings.TrimRight(baseURL, "/"),
		httpc:      httpc,
		MaxRetries: 3,
		sleep:      time.Sleep,
	}
}

// Search runs one paginated search call against the remote API.
func (c *Client) Search(ctx context.Context, q Query) (*Page, error) {
	u, err := c.searchURL(q)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("social: build request: %w", err)
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return nil, fmt.Errorf("social: search request: %w", err)
		}
		page, retryAfter, err := decodeSearchResponse(resp)
		if err == nil {
			return page, nil
		}
		if retryAfter <= 0 || attempt >= c.MaxRetries {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		c.sleep(retryAfter)
	}
}

// Health checks the server's health endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v2/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("social: health request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("social: health status %d", resp.StatusCode)
	}
	return nil
}

func (c *Client) searchURL(q Query) (string, error) {
	v := url.Values{}
	if len(q.AnyTags) > 0 {
		v.Set("tags", strings.Join(q.AnyTags, ","))
	}
	if len(q.MustTerms) > 0 {
		v.Set("must", strings.Join(q.MustTerms, ","))
	}
	if q.Region != "" {
		v.Set("region", string(q.Region))
	}
	if !q.Since.IsZero() {
		v.Set("since", q.Since.UTC().Format(time.RFC3339))
	}
	if !q.Until.IsZero() {
		v.Set("until", q.Until.UTC().Format(time.RFC3339))
	}
	if q.MaxResults > 0 {
		v.Set("max_results", strconv.Itoa(q.MaxResults))
	}
	if q.PageToken != "" {
		v.Set("next_token", q.PageToken)
	}
	if q.SkipTotal {
		v.Set("skip_total", "1")
	}
	return c.baseURL + "/v2/search?" + v.Encode(), nil
}

// decodeSearchResponse parses a search response. On 429 it returns the
// suggested retry delay with a non-nil error.
func decodeSearchResponse(resp *http.Response) (*Page, time.Duration, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, fmt.Errorf("social: read response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var sr searchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return nil, 0, fmt.Errorf("social: decode response: %w", err)
		}
		return &Page{
			Posts:        sr.Data,
			NextToken:    sr.Meta.NextToken,
			TotalMatches: sr.Meta.TotalMatches,
		}, 0, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return nil, retry, fmt.Errorf("social: rate limited (retry after %s)", retry)
	default:
		var er errorResponse
		_ = json.Unmarshal(body, &er)
		if er.Error == "" {
			er.Error = http.StatusText(resp.StatusCode)
		}
		return nil, 0, fmt.Errorf("social: API status %d: %s", resp.StatusCode, er.Error)
	}
}
