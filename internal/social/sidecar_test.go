package social

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/durable"
)

// sidecarFixture ingests a deterministic corpus with a compaction in
// the middle — so the directory holds per-stripe snapshots WITH index
// sidecars plus a WAL tail — closes abruptly, and returns the data dir
// and the acknowledged listing.
func sidecarFixture(t *testing.T, shards, posts int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(shards))
	if err != nil {
		t.Fatal(err)
	}
	var batch []*Post
	flushed := false
	for n := 0; n < posts; n++ {
		batch = append(batch, durPost(n, n%11))
		if len(batch) == 5 {
			if err := s.Add(batch...); err != nil {
				t.Fatal(err)
			}
			batch = nil
			if !flushed && n >= posts/2 {
				flushed = true
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := s.Add(batch...); err != nil {
		t.Fatal(err)
	}
	if !flushed {
		t.Fatalf("fixture too small to flush: %d posts", posts)
	}
	want := listAll(t, s)
	s.closeAbrupt()
	return dir, want
}

// nonEmptyStripes counts manifest stripes holding a snapshot.
func nonEmptyStripes(t *testing.T, dir string) int {
	t.Helper()
	man, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range man.Stripes {
		if ent.Posts != "" {
			n++
		}
	}
	return n
}

// TestDurableWarmOpenIndexed: after a clean close, every stripe must
// recover through its index sidecar — no re-tokenization — and the
// listing must stay byte-identical to the acknowledged state, at
// stripe counts 1, 4 and 16.
func TestDurableWarmOpenIndexed(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStoreDir(dir, noCompact(shards))
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 10; b++ {
				var batch []*Post
				for i := 0; i < 8; i++ {
					n := b*8 + i
					batch = append(batch, durPost(n, n%17))
				}
				if err := s.Add(batch...); err != nil {
					t.Fatal(err)
				}
			}
			want := listAll(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenStoreDir(dir, noCompact(0))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			st := re.Stats()
			if wantIdx := nonEmptyStripes(t, dir); st.RecoveredIndexed != wantIdx || st.RecoveredRebuilt != 0 {
				t.Fatalf("recovery split = %d indexed / %d rebuilt, want %d / 0",
					st.RecoveredIndexed, st.RecoveredRebuilt, wantIdx)
			}
			if got := listAll(t, re); !reflect.DeepEqual(got, want) {
				t.Fatal("warm-open listing not byte-identical to acknowledged state")
			}
			if st.DirtyStripes != 0 {
				t.Fatalf("clean warm open left %d dirty stripes", st.DirtyStripes)
			}
		})
	}
}

// TestDurableSidecarCorruptionFallback is the crash-mid-compaction
// property test for the sidecar: the index file torn at EVERY byte
// offset — and bit-flipped, version-skewed and replaced with garbage —
// must degrade the open to the re-tokenize fallback, never fail it,
// with the recovered listing byte-identical to the acknowledged state.
// Run with -race.
func TestDurableSidecarCorruptionFallback(t *testing.T) {
	dir, want := sidecarFixture(t, 4, 25)
	man, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var idxPath string
	for _, ent := range man.Stripes {
		if ent.Index != "" {
			idxPath = filepath.Join(dir, snapDirName, ent.Index)
			break
		}
	}
	if idxPath == "" {
		t.Fatal("fixture produced no index sidecar")
	}
	full, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(t *testing.T, wantFallback bool) {
		t.Helper()
		re, err := OpenStoreDir(dir, noCompact(0))
		if err != nil {
			t.Fatalf("a damaged sidecar must never fail the open: %v", err)
		}
		// closeAbrupt, not Close: a graceful close compacts the WAL tail,
		// which would repair the sidecar under the loop's feet.
		defer re.closeAbrupt()
		if got := listAll(t, re); !reflect.DeepEqual(got, want) {
			t.Fatal("fallback listing not byte-identical to acknowledged state")
		}
		if st := re.Stats(); wantFallback && st.RecoveredRebuilt == 0 {
			t.Fatal("damaged sidecar did not trigger the rebuild fallback")
		}
	}

	// Torn at every cut offset: a crashed write that left a prefix. The
	// sidecar is written atomically, so a real crash leaves the old file
	// or the new one — this proves even a non-atomic filesystem cannot
	// corrupt recovery.
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(idxPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopen(t, cut < len(full))
	}
	// A flipped byte anywhere: framing, checksum or structural
	// validation must catch it.
	for off := 0; off < len(full); off += 7 {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x40
		if err := os.WriteFile(idxPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		reopen(t, true)
	}
	// Version skew: a future format bumps the magic digit.
	skew := append([]byte(nil), full...)
	copy(skew, "PSPIDX2\n")
	if err := os.WriteFile(idxPath, skew, 0o644); err != nil {
		t.Fatal(err)
	}
	reopen(t, true)
	// A deleted sidecar and pure garbage.
	if err := os.Remove(idxPath); err != nil {
		t.Fatal(err)
	}
	reopen(t, true)
	if err := os.WriteFile(idxPath, []byte("not an index at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopen(t, true)

	// The fallback leaves the stripe dirty: one compaction repairs the
	// sidecar, and the next open is fully indexed again.
	re, err := OpenStoreDir(dir, noCompact(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re, err = OpenStoreDir(dir, noCompact(0))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.RecoveredRebuilt != 0 || st.RecoveredIndexed == 0 {
		t.Fatalf("post-repair open = %d indexed / %d rebuilt, want all indexed",
			st.RecoveredIndexed, st.RecoveredRebuilt)
	}
	if got := listAll(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("post-repair listing not byte-identical to acknowledged state")
	}
}

// TestDurableBackwardCompatV1Dir synthesizes a pre-indexing (PR-5
// format) data directory — one whole-corpus snapshot, a version-0
// manifest, no sidecars — and requires it to open through the
// re-tokenize fallback, upgrade to the per-stripe format at its first
// compaction, and open warm ever after.
func TestDurableBackwardCompatV1Dir(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, snapDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	var posts []*Post
	for n := 0; n < 30; n++ {
		posts = append(posts, durPost(n, n%9))
	}
	mem := NewStoreShards(shards)
	if err := mem.Add(clonePosts(posts)...); err != nil {
		t.Fatal(err)
	}
	want := listAll(t, mem)
	legacy := "snap-00000007.jsonl"
	if err := WritePostsFile(filepath.Join(dir, snapDirName, legacy), mem.SnapshotPosts()); err != nil {
		t.Fatal(err)
	}
	man := &durable.Manifest{Shards: shards, Gen: 7, Snapshot: legacy, Floors: make([]uint64, shards)}
	if err := man.Write(dir); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStoreDir(dir, noCompact(0))
	if err != nil {
		t.Fatalf("a PR-5-format dir must keep opening: %v", err)
	}
	if s.Shards() != shards {
		t.Fatalf("opened with %d shards, want %d", s.Shards(), shards)
	}
	if st := s.Stats(); st.RecoveredIndexed != 0 || st.RecoveredRebuilt == 0 {
		t.Fatalf("legacy open = %d indexed / %d rebuilt, want pure fallback",
			st.RecoveredIndexed, st.RecoveredRebuilt)
	}
	if got := listAll(t, s); !reflect.DeepEqual(got, want) {
		t.Fatal("legacy open listing differs from reference")
	}
	// First compaction upgrades the directory in place.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	up, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != durable.ManifestVersion || len(up.Stripes) != shards || up.Snapshot != "" {
		t.Fatalf("manifest not upgraded: version=%d stripes=%d snapshot=%q",
			up.Version, len(up.Stripes), up.Snapshot)
	}
	if _, err := os.Stat(filepath.Join(dir, snapDirName, legacy)); !os.IsNotExist(err) {
		t.Fatalf("legacy whole-corpus snapshot not removed after upgrade: %v", err)
	}

	re, err := OpenStoreDir(dir, noCompact(0))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.RecoveredRebuilt != 0 || st.RecoveredIndexed == 0 {
		t.Fatalf("post-upgrade open = %d indexed / %d rebuilt, want all indexed",
			st.RecoveredIndexed, st.RecoveredRebuilt)
	}
	if got := listAll(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("post-upgrade listing differs from reference")
	}
}

// TestDurableIncrementalCompaction pins the delta-bounded contract: a
// compaction after a small delta rewrites only the delta's stripes (the
// clean stripes keep their snapshot files and floors verbatim), and a
// compaction with no delta at all writes nothing — not even a manifest.
func TestDurableIncrementalCompaction(t *testing.T) {
	const shards = 8
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for n := 0; n < 80; n++ {
		if err := s.Add(durPost(n, n%16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	man0, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A delta confined to one day lands on one stripe.
	delta := []*Post{durPost(900, 3), durPost(901, 3), durPost(902, 3)}
	if err := s.Add(delta...); err != nil {
		t.Fatal(err)
	}
	target := s.shardFor(delta[0].CreatedAt)
	if st := s.Stats(); st.DirtyStripes != 1 {
		t.Fatalf("delta dirtied %d stripes, want 1", st.DirtyStripes)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := st.CompactedStripes - base.CompactedStripes; got != 1 {
		t.Fatalf("delta compaction rewrote %d stripes, want 1", got)
	}
	if full, inc := base.CompactionBytes, st.CompactionBytes-base.CompactionBytes; inc*4 >= full {
		t.Fatalf("delta compaction wrote %d bytes vs %d for the full corpus — not delta-bounded", inc, full)
	}
	man1, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range man1.Stripes {
		if i == target {
			if man1.Stripes[i] == man0.Stripes[i] {
				t.Fatalf("dirty stripe %d kept its old snapshot files", i)
			}
			continue
		}
		if man1.Stripes[i] != man0.Stripes[i] || man1.Floors[i] != man0.Floors[i] {
			t.Fatalf("clean stripe %d was rewritten: %+v -> %+v (floor %d -> %d)",
				i, man0.Stripes[i], man1.Stripes[i], man0.Floors[i], man1.Floors[i])
		}
	}

	// Idle early-exit: no applied records, no writes, no new manifest.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	idle := s.Stats()
	if idle.CompactionBytes != st.CompactionBytes || idle.CompactedStripes != st.CompactedStripes {
		t.Fatal("idle compaction wrote bytes")
	}
	man2, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Gen != man1.Gen {
		t.Fatalf("idle compaction advanced the manifest generation %d -> %d", man1.Gen, man2.Gen)
	}
}

// TestTotalMatchesMultiKeyEquivalence pins the sublinear multi-key
// count paths (posting-list intersection for multiple must-terms,
// inclusion–exclusion for two-tag unions) to the brute-force predicate,
// across shard counts and query windows.
func TestTotalMatchesMultiKeyEquivalence(t *testing.T) {
	posts, err := Generate(DefaultCorpusSpec(21434))
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{MustTerms: []string{"excavator", "limp"}},
		{MustTerms: []string{"excavator", "limp", "mode"}},
		{MustTerms: []string{"excavator", "limp"}, Since: ts(2021, 6, 1), Until: ts(2022, 6, 1)},
		{MustTerms: []string{"excavator", "nosuchterm"}},
		{AnyTags: []string{"dpfdelete", "chiptuning"}},
		{AnyTags: []string{"dpfdelete", "chiptuning"}, Since: ts(2022, 1, 1), Until: ts(2023, 1, 1)},
		{AnyTags: []string{"dpfdelete", "dpfdelete"}},
		{AnyTags: []string{"dpfdelete", "nosuchtag"}},
	}
	for _, shards := range []int{1, 4, 16} {
		s := NewStoreShards(shards)
		if err := s.Add(clonePosts(posts)...); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want := 0
			for _, p := range posts {
				if q.MatchesPost(p) {
					want++
				}
			}
			q.MaxResults = 1
			page, err := s.Search(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if page.TotalMatches != want {
				t.Errorf("query %d at %d shards: TotalMatches = %d, brute force = %d",
					qi, shards, page.TotalMatches, want)
			}
			if qi < 3 && want == 0 {
				t.Errorf("query %d matches nothing; equivalence is vacuous", qi)
			}
		}
	}
}

// TestDurableSidecarOddPostRoundTrip: the binary sidecar must carry
// posts the JSONL path renders with non-trivial detail — fixed and
// named non-UTC zones, sub-second precision, unicode and newlines in
// the text, an empty author — through a warm indexed open with the
// listing byte-identical to the acknowledged state.
func TestDurableSidecarOddPostRoundTrip(t *testing.T) {
	odd := []*Post{
		{
			ID:        "odd-utc",
			Author:    "plain",
			Text:      "baseline #turbo chatter about the excavator",
			CreatedAt: time.Date(2024, 5, 1, 8, 0, 0, 123456789, time.UTC),
			Region:    RegionEurope,
			Metrics:   Metrics{Views: 10},
		},
		{
			ID:        "odd-cest",
			Author:    "", // Validate allows an empty author
			Text:      "remap \"quotes\" and\nnewlines #turbo 🚜 χαίρετε",
			CreatedAt: time.Date(2024, 5, 2, 9, 30, 0, 120000000, time.FixedZone("CEST", 2*3600)),
			Region:    RegionEurope,
			Metrics:   Metrics{Views: 1, Likes: 2, Reposts: 3, Replies: 4},
		},
		{
			ID:        "odd-nst",
			Author:    "newfoundland",
			Text:      "negative half-hour offset #turbo",
			CreatedAt: time.Date(2024, 5, 3, 6, 15, 45, 1, time.FixedZone("NST", -(3*3600+30*60))),
			Region:    RegionNorthAmerica,
			Metrics:   Metrics{},
		},
		{
			ID:        "odd-npt",
			Author:    "kathmandu",
			Text:      "quarter-hour offset #turbo",
			CreatedAt: time.Date(1999, 12, 31, 23, 59, 59, 999999999, time.FixedZone("NPT", 5*3600+45*60)),
			Region:    RegionAsiaPacific,
			Metrics:   Metrics{Views: 7},
		},
	}
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(clonePosts(odd)...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := listAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if got, idx := nonEmptyStripes(t, dir), int(st.RecoveredIndexed); idx != got || st.RecoveredRebuilt != 0 {
		t.Fatalf("warm open: indexed %d of %d stripes, rebuilt %d; want all indexed",
			idx, got, st.RecoveredRebuilt)
	}
	if got := listAll(t, re); !reflect.DeepEqual(want, got) {
		t.Fatalf("odd-post listing diverged after indexed reopen:\nwant %s\ngot  %s", want, got)
	}
}

// TestDurableSidecarEncodeFailurePostsOnly: a post whose timestamp
// cannot round-trip through the sidecar's Unix-nanosecond encoding
// (far outside the int64 range) must not wedge compaction — the
// affected stripe degrades to a posts-only manifest entry, every other
// stripe keeps its sidecar, and the reopen recovers the degraded
// stripe through the re-tokenizing fallback with the listing intact.
func TestDurableSidecarEncodeFailurePostsOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	var batch []*Post
	for n := 0; n < 40; n++ {
		batch = append(batch, durPost(n, n%11))
	}
	far := &Post{
		ID:        "odd-beyond-nano",
		Author:    "deep-future",
		Text:      "timestamp beyond the Unix-nano range #turbo",
		CreatedAt: time.Date(2400, 1, 1, 0, 0, 0, 0, time.UTC),
		Region:    RegionEurope,
	}
	if err := s.Add(append(batch, far)...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	man, err := durable.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	postsOnly := 0
	for _, ent := range man.Stripes {
		if ent.Posts != "" && ent.Index == "" {
			postsOnly++
		}
	}
	if postsOnly != 1 {
		t.Fatalf("posts-only stripes after degraded compaction = %d, want exactly 1", postsOnly)
	}
	want := listAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.RecoveredRebuilt != 1 {
		t.Fatalf("RecoveredRebuilt = %d, want 1 (the posts-only stripe)", st.RecoveredRebuilt)
	}
	if got := listAll(t, re); !reflect.DeepEqual(want, got) {
		t.Fatalf("listing diverged after degraded-stripe reopen:\nwant %s\ngot  %s", want, got)
	}
}
