package social

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// backfillPost builds a post whose timestamp interleaves with the seeded
// listing — the late-arrival shape that shifted offset-token pages.
func backfillPost(i int, minute int) *Post {
	return &Post{
		ID:        fmt.Sprintf("late-%04d", i),
		Author:    "writer",
		Text:      "late #dpfdelete chatter",
		CreatedAt: time.Date(2022, 1, 1, 10, minute, 30, 0, time.UTC),
		Region:    RegionEurope,
		Metrics:   Metrics{Views: 1},
	}
}

// TestKeysetPaginationStableUnderAdd drains a listing page by page while
// a writer inserts posts whose timestamps land before the drain
// position. Offset tokens shifted the listing under the reader (the
// same post re-appeared on the next page); keyset tokens must deliver
// every pre-drain post exactly once and never duplicate anything.
func TestKeysetPaginationStableUnderAdd(t *testing.T) {
	s := NewStore()
	const seeded = 120
	for i := 0; i < seeded; i++ {
		if err := s.Add(&Post{
			ID:        fmt.Sprintf("seed-%04d", i),
			Author:    "seed",
			Text:      "seeded #dpfdelete post",
			CreatedAt: time.Date(2022, 1, 1, 10, i, 0, 0, time.UTC),
			Region:    RegionEurope,
			Metrics:   Metrics{Views: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[string]int)
	q := Query{AnyTags: []string{"dpfdelete"}, MaxResults: 10}
	late := 0
	for {
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range page.Posts {
			seen[p.ID]++
		}
		if page.NextToken == "" {
			break
		}
		q.PageToken = page.NextToken
		// Insert posts timestamped BEFORE the current drain position —
		// with offsets these shifted the listing right and the reader
		// saw the tail of the previous page again.
		for k := 0; k < 5; k++ {
			if err := s.Add(backfillPost(late, (late*7)%seeded)); err != nil {
				t.Fatal(err)
			}
			late++
		}
	}

	for id, n := range seen {
		if n > 1 {
			t.Errorf("post %s delivered %d times", id, n)
		}
	}
	for i := 0; i < seeded; i++ {
		if seen[fmt.Sprintf("seed-%04d", i)] == 0 {
			t.Errorf("pre-drain post seed-%04d skipped", i)
		}
	}
}

// TestKeysetPaginationConcurrentWriter re-runs the stability scenario
// with a free-running writer goroutine (exercised under -race).
func TestKeysetPaginationConcurrentWriter(t *testing.T) {
	s := NewStore()
	const seeded = 200
	for i := 0; i < seeded; i++ {
		if err := s.Add(&Post{
			ID:        fmt.Sprintf("seed-%04d", i),
			Author:    "seed",
			Text:      "seeded #dpfdelete post",
			CreatedAt: time.Date(2022, 1, 1, 10, i%60, i/60, 0, time.UTC),
			Region:    RegionEurope,
			Metrics:   Metrics{Views: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Add(backfillPost(i, (i*13)%60)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	seen := make(map[string]int)
	q := Query{AnyTags: []string{"dpfdelete"}, MaxResults: 16}
	for {
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range page.Posts {
			if seen[p.ID]++; seen[p.ID] > 1 {
				t.Errorf("post %s duplicated across pages", p.ID)
			}
		}
		if page.NextToken == "" {
			break
		}
		q.PageToken = page.NextToken
	}
	close(done)
	wg.Wait()
	for i := 0; i < seeded; i++ {
		if seen[fmt.Sprintf("seed-%04d", i)] == 0 {
			t.Errorf("pre-drain post seed-%04d skipped", i)
		}
	}
}

func TestWatchDeliversLiveBatches(t *testing.T) {
	s := newTestStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	feed := s.Watch(ctx, WatchOptions{})

	batch := []*Post{
		{ID: "w1", Author: "a", Text: "one #dpfdelete", CreatedAt: ts(2023, 2, 1), Metrics: Metrics{Views: 1}},
		{ID: "w2", Author: "a", Text: "two #dpfdelete", CreatedAt: ts(2023, 2, 2), Metrics: Metrics{Views: 1}},
	}
	if err := s.Add(batch...); err != nil {
		t.Fatal(err)
	}
	got := collectFeed(t, feed, 2)
	if got[0] != "w1" || got[1] != "w2" {
		t.Errorf("live delivery = %v, want [w1 w2]", got)
	}

	// Cancellation closes the feed.
	cancel()
	select {
	case _, ok := <-feed:
		if ok {
			// A queued batch may still flush; the channel must close after.
			if _, ok := <-feed; ok {
				t.Error("feed still open after cancellation")
			}
		}
	case <-time.After(2 * time.Second):
		t.Error("feed not closed after cancellation")
	}
}

func TestWatchReplayAfterCursor(t *testing.T) {
	s := newTestStore(t) // p1..p4 seeded
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Resume after p2: replay delivers p3, p4, then live traffic follows.
	after := CursorOf(s.Post("p2"))
	feed := s.Watch(ctx, WatchOptions{After: &after})
	if err := s.Add(&Post{ID: "w3", Author: "a", Text: "new #dpfdelete", CreatedAt: ts(2023, 3, 1), Metrics: Metrics{Views: 1}}); err != nil {
		t.Fatal(err)
	}
	got := collectFeed(t, feed, 3)
	if got[0] != "p3" || got[1] != "p4" || got[2] != "w3" {
		t.Errorf("replayed feed = %v, want [p3 p4 w3]", got)
	}
}

// TestWatchNoLossNoDupUnderConcurrentAdd floods the store from several
// writers while one subscriber replays from the zero cursor: every post
// must arrive exactly once.
func TestWatchNoLossNoDupUnderConcurrentAdd(t *testing.T) {
	s := NewStore()
	// Pre-populate so replay and live delivery overlap.
	for i := 0; i < 50; i++ {
		if err := s.Add(backfillPost(i, i%60)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	zero := Cursor{}
	feed := s.Watch(ctx, WatchOptions{After: &zero, Buffer: 4})

	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := &Post{
					ID:        fmt.Sprintf("w%d-%03d", w, i),
					Author:    fmt.Sprintf("writer%d", w),
					Text:      "flood #dpfdelete",
					CreatedAt: time.Date(2022, 3, 1+w, 0, i/60, i%60, 0, time.UTC),
					Metrics:   Metrics{Views: 1},
				}
				if err := s.Add(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	want := 50 + writers*perWriter
	got := collectFeed(t, feed, want)
	seen := make(map[string]bool, len(got))
	for _, id := range got {
		if seen[id] {
			t.Fatalf("post %s delivered twice", id)
		}
		seen[id] = true
	}
	if len(seen) != want {
		t.Errorf("delivered %d distinct posts, want %d", len(seen), want)
	}
}

// collectFeed reads IDs off a feed until n posts arrived or a timeout.
func collectFeed(t *testing.T, feed <-chan []*Post, n int) []string {
	t.Helper()
	var out []string
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case batch, ok := <-feed:
			if !ok {
				t.Fatalf("feed closed after %d of %d posts", len(out), n)
			}
			for _, p := range batch {
				out = append(out, p.ID)
			}
		case <-deadline:
			t.Fatalf("timed out after %d of %d posts", len(out), n)
		}
	}
	if len(out) > n {
		t.Fatalf("feed over-delivered: %d posts, want %d", len(out), n)
	}
	return out
}

// TestWatchSubscribeDuringConcurrentAdd registers subscribers while
// writers commit to disjoint stripes. Registration copy-on-writes the
// subscriber set inside the all-writers lock window, so every
// subscriber must see each post exactly once — either in its replay
// snapshot or live, never both, never neither — even though publication
// itself takes no store-level lock.
func TestWatchSubscribeDuringConcurrentAdd(t *testing.T) {
	s := NewStoreShards(8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const writers, perWriter, watchers = 4, 80, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := &Post{
					ID:        fmt.Sprintf("mid-w%d-%03d", w, i),
					Author:    fmt.Sprintf("writer%d", w),
					Text:      "flood #chiptuning",
					CreatedAt: time.Date(2022, 6, 1+w, 0, i/60, i%60, 0, time.UTC),
					Metrics:   Metrics{Views: 1},
				}
				if err := s.Add(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	feeds := make([]<-chan []*Post, watchers)
	for i := range feeds {
		zero := Cursor{}
		feeds[i] = s.Watch(ctx, WatchOptions{After: &zero, Buffer: 4})
	}
	wg.Wait()

	want := writers * perWriter
	for i, feed := range feeds {
		got := collectFeed(t, feed, want)
		seen := make(map[string]bool, len(got))
		for _, id := range got {
			if seen[id] {
				t.Fatalf("watcher %d: post %s delivered twice", i, id)
			}
			seen[id] = true
		}
		if len(seen) != want {
			t.Errorf("watcher %d: %d distinct posts, want %d", i, len(seen), want)
		}
	}
}
