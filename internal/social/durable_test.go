package social

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// durPost builds a deterministic test post; day spreads posts across
// time buckets (and so stripes).
func durPost(n, day int) *Post {
	return &Post{
		ID:        fmt.Sprintf("dur-%05d", n),
		Author:    fmt.Sprintf("author-%d", n%7),
		Text:      fmt.Sprintf("durable #walwrite chatter %d about the excavator fleet", n),
		CreatedAt: time.Date(2024, 3, 1, 8, 0, 0, 0, time.UTC).AddDate(0, 0, day),
		Region:    RegionEurope,
		Metrics:   Metrics{Views: n, Likes: n % 13},
	}
}

// listAll drains the full listing — the byte-identity oracle of the
// recovery tests.
func listAll(t *testing.T, s *Store) []byte {
	t.Helper()
	posts, err := SearchAll(context.Background(), s, Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(posts)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// noCompact disables background compaction so tests control snapshots.
func noCompact(shards int) DurableOptions {
	return DurableOptions{Shards: shards, CompactEvery: -1, CompactRecords: -1}
}

// TestDurableReopenEquivalence: acknowledged posts must survive a clean
// close + reopen, with SearchAll byte-identical to an in-memory store
// holding the same posts, at several stripe counts — both from the
// pure-WAL state and after a snapshot compaction.
func TestDurableReopenEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, flush := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/flush=%v", shards, flush), func(t *testing.T) {
				dir := t.TempDir()
				s, err := OpenStoreDir(dir, noCompact(shards))
				if err != nil {
					t.Fatal(err)
				}
				mem := NewStoreShards(shards)
				for b := 0; b < 12; b++ {
					var batch []*Post
					for i := 0; i < 10; i++ {
						n := b*10 + i
						batch = append(batch, durPost(n, n%23))
					}
					if err := s.Add(batch...); err != nil {
						t.Fatal(err)
					}
					if err := mem.Add(clonePosts(batch)...); err != nil {
						t.Fatal(err)
					}
					if flush && b == 6 {
						if err := s.Flush(); err != nil {
							t.Fatal(err)
						}
					}
				}
				want := listAll(t, mem)
				if got := listAll(t, s); !reflect.DeepEqual(got, want) {
					t.Fatal("pre-close listing differs from in-memory reference")
				}
				s.closeAbrupt() // no final snapshot: reopen must replay the WAL

				re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				if re.Shards() != shards {
					t.Fatalf("reopened with %d shards, want %d (manifest)", re.Shards(), shards)
				}
				if got := listAll(t, re); !reflect.DeepEqual(got, want) {
					t.Fatal("recovered listing not byte-identical to acknowledged state")
				}
			})
		}
	}
}

// clonePosts deep-copies posts so two stores never share *Post values.
func clonePosts(posts []*Post) []*Post {
	out := make([]*Post, len(posts))
	for i, p := range posts {
		cp := *p
		out[i] = &cp
	}
	return out
}

// walFrame frames one payload the way the WAL does.
func walFrame(payload []byte) []byte {
	var header [8]byte
	table := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, table))
	return append(header[:], payload...)
}

// lastSegment returns the newest WAL segment file of a stripe.
func lastSegment(t *testing.T, dir string, stripe int) string {
	t.Helper()
	sdir := filepath.Join(dir, walDirName, fmt.Sprintf("stripe-%04d", stripe))
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		t.Fatalf("stripe %d has no segments", stripe)
	}
	sort.Strings(names)
	return filepath.Join(sdir, names[len(names)-1])
}

// TestDurableCrashRecovery is the crash property test: ingest
// acknowledged batches, then simulate a crash that kills an in-flight
// unacknowledged write at an arbitrary byte offset — a torn WAL tail, a
// corrupt CRC, or a crashed segment roll (empty new segment) — and
// assert the recovered listing is byte-identical to the acknowledged
// pre-crash state, at stripe counts 1, 4 and 16.
func TestDurableCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(21434))
	inflight, err := json.Marshal([]*Post{durPost(99999, 3)})
	if err != nil {
		t.Fatal(err)
	}
	full := walFrame(inflight)
	for _, shards := range []int{1, 4, 16} {
		// Arbitrary byte offsets into the in-flight record, both header
		// and payload cuts, plus the damage modes that are not plain
		// truncation.
		cuts := []int{0, 1, 7, 8, 9, len(full) / 2, len(full) - 1}
		for i := 0; i < 4; i++ {
			cuts = append(cuts, 1+rng.Intn(len(full)-1))
		}
		for _, cut := range cuts {
			cut := cut
			t.Run(fmt.Sprintf("shards=%d/torn-at-%d", shards, cut), func(t *testing.T) {
				dir, want := ackedStore(t, shards)
				// The crash: an unacknowledged record torn at byte `cut`,
				// landing on an arbitrary stripe's log.
				appendToFile(t, lastSegment(t, dir, rng.Intn(shards)), full[:cut])
				assertRecovered(t, dir, want)
			})
		}
		t.Run(fmt.Sprintf("shards=%d/corrupt-crc", shards), func(t *testing.T) {
			dir, want := ackedStore(t, shards)
			bad := walFrame(inflight)
			bad[len(bad)-1] ^= 0xFF
			appendToFile(t, lastSegment(t, dir, 0), bad)
			assertRecovered(t, dir, want)
		})
		t.Run(fmt.Sprintf("shards=%d/crashed-roll", shards), func(t *testing.T) {
			dir, want := ackedStore(t, shards)
			// A roll that crashed after creating the next segment but
			// before its first record: an empty segment file with a far
			// first-sequence... and a missing-segment gap for stripe 0.
			sdir := filepath.Join(dir, walDirName, "stripe-0000")
			if err := os.WriteFile(filepath.Join(sdir, fmt.Sprintf("%020d.seg", uint64(1_000_000))), nil, 0o644); err != nil {
				t.Fatal(err)
			}
			assertRecovered(t, dir, want)
		})
	}
}

// ackedStore ingests a deterministic corpus (with a mid-way snapshot so
// recovery exercises snapshot + WAL tail), closes abruptly, and returns
// the data dir plus the acknowledged listing.
func ackedStore(t *testing.T, shards int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(shards))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 8; b++ {
		var batch []*Post
		for i := 0; i < 5; i++ {
			n := b*5 + i
			batch = append(batch, durPost(n, n%19))
		}
		if err := s.Add(batch...); err != nil {
			t.Fatal(err)
		}
		if b == 3 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := listAll(t, s)
	s.closeAbrupt()
	return dir, want
}

func appendToFile(t *testing.T, path string, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func assertRecovered(t *testing.T, dir string, want []byte) {
	t.Helper()
	re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatalf("recovery must never be fatal: %v", err)
	}
	defer re.Close()
	if got := listAll(t, re); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered listing differs from acknowledged state:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestDurableConcurrentIngestRecovery: concurrent writers ingest
// multi-stripe batches (with compaction racing them); every batch whose
// Add returned must survive an abrupt close, byte-identically.
func TestDurableConcurrentIngestRecovery(t *testing.T) {
	for _, shards := range []int{4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStoreDir(dir, DurableOptions{
				Shards:       shards,
				CompactEvery: time.Millisecond, // compaction races ingest
			})
			if err != nil {
				t.Fatal(err)
			}
			const writers, perWriter = 8, 12
			var wg sync.WaitGroup
			acked := make([][]*Post, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for b := 0; b < perWriter; b++ {
						var batch []*Post
						for i := 0; i < 4; i++ {
							n := (w*perWriter+b)*4 + i
							// Spread one batch across several stripes.
							batch = append(batch, durPost(n, n%29))
						}
						if err := s.Add(batch...); err != nil {
							t.Errorf("add: %v", err)
							return
						}
						acked[w] = append(acked[w], batch...)
					}
				}(w)
			}
			wg.Wait()
			var all []*Post
			for _, posts := range acked {
				all = append(all, posts...)
			}
			sort.Slice(all, func(i, j int) bool { return postLess(all[i], all[j]) })
			want, err := json.Marshal(all)
			if err != nil {
				t.Fatal(err)
			}
			s.closeAbrupt()

			re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := listAll(t, re); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered %d bytes, acknowledged %d bytes", len(got), len(want))
			}
		})
	}
}

// TestDurableLargeBatchChunksRecords: a sub-batch bigger than the
// per-record chunk splits into several WAL records (no MaxRecordBytes
// cliff on whole-corpus seeds) and recovers whole.
func TestDurableLargeBatchChunksRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(2))
	if err != nil {
		t.Fatal(err)
	}
	n := walChunkPosts + 50 // same day → one stripe → one sub-batch
	batch := make([]*Post, n)
	for i := range batch {
		batch[i] = durPost(i, 0)
	}
	if err := s.Add(batch...); err != nil {
		t.Fatal(err)
	}
	if last := s.dur.logs[s.shardFor(batch[0].CreatedAt)].LastSeq(); last < 2 {
		t.Fatalf("oversized sub-batch produced %d WAL records, want ≥2", last)
	}
	want := listAll(t, s)
	s.closeAbrupt()
	re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := listAll(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked batch did not recover byte-identically")
	}
}

// TestDurableCompactionTruncatesWAL: after a flush, segments wholly
// below the floor disappear, and the store still reopens identically.
func TestDurableCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	opts := noCompact(2)
	opts.SegmentBytes = 256 // tiny segments so truncation has targets
	s, err := OpenStoreDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 40; n++ {
		if err := s.Add(durPost(n, n%2)); err != nil {
			t.Fatal(err)
		}
	}
	before := countSegments(t, dir)
	if before < 4 {
		t.Fatalf("want several segments before flush, got %d", before)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if after := countSegments(t, dir); after >= before {
		t.Fatalf("flush truncated nothing: %d segments before, %d after", before, after)
	}
	want := listAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := listAll(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("listing changed across flush + reopen")
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.Walk(filepath.Join(dir, walDirName), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".seg" {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestDurablePostsSince: the cursor delta contains exactly the posts
// ingested after the cursor, even across a compaction.
func TestDurablePostsSince(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for n := 0; n < 10; n++ {
		if err := s.Add(durPost(n, n%11)); err != nil {
			t.Fatal(err)
		}
	}
	cur := s.DurableCursor()
	if cur == nil {
		t.Fatal("durable store must expose a cursor")
	}
	if delta, err := s.PostsSince(cur); err != nil || len(delta) != 0 {
		t.Fatalf("delta at current cursor: %d posts, err %v", len(delta), err)
	}
	var want []string
	for n := 10; n < 25; n++ {
		if err := s.Add(durPost(n, n%11)); err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprintf("dur-%05d", n))
	}
	delta, err := s.PostsSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range delta {
		got = append(got, p.ID)
	}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta %v, want %v", got, want)
	}
	// Compaction keeps whole segments, so a cursor this recent is still
	// replayable afterwards.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if delta, err := s.PostsSince(s.DurableCursor()); err != nil || len(delta) != 0 {
		t.Fatalf("delta after flush at fresh cursor: %d posts, err %v", len(delta), err)
	}
	// An in-memory store has no cursor.
	mem := NewStore()
	if mem.DurableCursor() != nil {
		t.Fatal("in-memory store returned a durable cursor")
	}
	if _, err := mem.PostsSince(DurableCursor{}); err == nil {
		t.Fatal("PostsSince on an in-memory store must fail")
	}
}

// TestDurableSeedResumesAfterCrash: a directory whose seed crashed
// before the marker committed resumes seeding idempotently (durable
// posts skipped by ID); once the marker exists the seed never runs
// again.
func TestDurableSeedResumesAfterCrash(t *testing.T) {
	dir := t.TempDir()
	full := make([]*Post, 100)
	for i := range full {
		full[i] = durPost(i, i%7)
	}
	// Simulate a seed killed mid-way: 60 posts WAL-durable, no marker.
	s, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(clonePosts(full[:60])...); err != nil {
		t.Fatal(err)
	}
	s.closeAbrupt()

	opts := noCompact(0)
	opts.Seed = func() ([]*Post, error) { return clonePosts(full), nil }
	re, err := OpenStoreDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(full) {
		t.Fatalf("resumed seed left %d posts, want %d", re.Len(), len(full))
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	seeded := false
	opts.Seed = func() ([]*Post, error) { seeded = true; return nil, nil }
	again, err := OpenStoreDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if seeded {
		t.Fatal("seed ran again on a marker-complete directory")
	}
	if again.Len() != len(full) {
		t.Fatalf("recovered %d posts, want %d", again.Len(), len(full))
	}
}

// TestDurableShardMismatch: reopening with a conflicting explicit shard
// count is refused; the manifest's count wins when unspecified.
func TestDurableShardMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreDir(dir, noCompact(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(durPost(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStoreDir(dir, noCompact(8)); err == nil {
		t.Fatal("conflicting shard count must be rejected")
	}
	re, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("manifest shard count not honored: %d", re.Shards())
	}
}

// TestWritePostsFileAtomic: the dump replaces the target atomically and
// a reopened LoadStore parses it whole.
func TestWritePostsFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")
	if err := os.WriteFile(path, []byte("{\"garbage\""), 0o644); err != nil {
		t.Fatal(err)
	}
	posts := []*Post{durPost(1, 0), durPost(2, 1)}
	if err := WritePostsFile(path, posts); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := ReadPosts(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d posts, want 2", len(loaded))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left in dump dir: %v", entries)
	}
}
