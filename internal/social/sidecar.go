package social

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"github.com/psp-framework/psp/internal/durable"
)

// The snapshot index sidecar persists one stripe — its posts and its
// posting lists — beside the stripe's JSON Lines post snapshot, in a
// compact binary form, so a warm open rebuilds the whole stripe with
// one file read and a varint scan: no JSON parsing, no tokenization.
// The JSON Lines file stays the authoritative, human-readable
// interchange format; the sidecar is strictly a derived copy, bound to
// it by generation-numbered file names in the manifest and by a
// checksum over the post IDs. Decode failures of any kind are
// recoverable by design: the caller falls back to reading and
// re-tokenizing the JSON Lines posts file, so a torn, corrupt or
// version-skewed sidecar degrades warm open to the old cold open,
// never a failed open.
//
// On-disk layout (integers little-endian unless marked (u)varint):
//
//	offset 0   8-byte magic "PSPIDX1\n" (the version lives in the magic:
//	           a future format bumps the digit and old readers fall back)
//	offset 8   uint32  payload length
//	offset 12  uint32  CRC-32C (Castagnoli) of the payload
//	offset 16  payload
//
// Payload:
//
//	uvarint  post count
//	uint32   id checksum — CRC-32C over each post ID + '\n' in order,
//	         the cross-check an offline tool can run against the JSON
//	         Lines file without decoding the rest of either
//	per post, in the stripe's (CreatedAt, ID) order:
//	  ID, Author, Text, Region as uvarint length + bytes
//	  varint   CreatedAt as Unix nanoseconds
//	  varint   CreatedAt zone offset in seconds (JSON timestamps only
//	           ever carry UTC or a fixed numeric offset, so the pair
//	           reproduces the timestamp's rendering exactly)
//	  uvarint  Views, Likes, Reposts, Replies
//	two sections, tags then terms, each:
//	  uvarint  key count
//	  per key, in ascending byte order:
//	    uvarint  key length, then the key bytes
//	    uvarint  posting count (≥ 1; empty lists are never written)
//	    postings as uvarint positions into the post order above,
//	    delta-encoded: first position absolute, every later one the
//	    gap to its predecessor (> 0 — positions ascend strictly)
var sidecarTable = crc32.MakeTable(crc32.Castagnoli)

const (
	sidecarMagic   = "PSPIDX1\n"
	sidecarHdrLen  = len(sidecarMagic) + 8 // magic + length + CRC
	maxSidecarLoad = 1 << 30               // refuse absurd payload lengths before allocating
)

// errSidecar marks any sidecar decode failure. Callers treat every
// instance the same way — fall back to the JSON Lines posts file — so
// one typed cause with a description is enough.
type sidecarError struct{ msg string }

func (e *sidecarError) Error() string { return "social: index sidecar: " + e.msg }

func sidecarErrf(format string, args ...any) error {
	return &sidecarError{msg: fmt.Sprintf(format, args...)}
}

// idChecksum is the CRC-32C over every post ID plus a newline, in
// order — the binding between a sidecar and its posts file.
func idChecksum(posts []*Post) uint32 {
	crc := uint32(0)
	for _, p := range posts {
		crc = crc32.Update(crc, sidecarTable, []byte(p.ID))
		crc = crc32.Update(crc, sidecarTable, []byte{'\n'})
	}
	return crc
}

// writeStripeIndex encodes g — posts and posting lists — to w in
// sidecar format.
func writeStripeIndex(w io.Writer, g *shardGen) error {
	pos := make(map[*Post]int, len(g.byTime))
	for i, p := range g.byTime {
		pos[p] = i
	}
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		payload.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	writeVarint := func(v int64) {
		payload.Write(tmp[:binary.PutVarint(tmp[:], v)])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		payload.WriteString(s)
	}
	writeUvarint(uint64(len(g.byTime)))
	binary.LittleEndian.PutUint32(tmp[:4], idChecksum(g.byTime))
	payload.Write(tmp[:4])
	for _, p := range g.byTime {
		nano := p.CreatedAt.UnixNano()
		_, off := p.CreatedAt.Zone()
		if !decodeTime(nano, off).Equal(p.CreatedAt) {
			// A timestamp outside the Unix-nanosecond range (or otherwise
			// not reproducible from the pair) cannot round-trip; refuse the
			// sidecar rather than persist a lie.
			return fmt.Errorf("social: write index sidecar: timestamp %v does not round-trip", p.CreatedAt)
		}
		writeString(p.ID)
		writeString(p.Author)
		writeString(p.Text)
		writeString(string(p.Region))
		writeVarint(nano)
		writeVarint(int64(off))
		writeUvarint(uint64(p.Metrics.Views))
		writeUvarint(uint64(p.Metrics.Likes))
		writeUvarint(uint64(p.Metrics.Reposts))
		writeUvarint(uint64(p.Metrics.Replies))
	}
	for _, m := range []map[string][]*Post{g.byTag, g.byTerm} {
		keys := make([]string, 0, len(m))
		for k := range m {
			if len(m[k]) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		writeUvarint(uint64(len(keys)))
		for _, k := range keys {
			writeString(k)
			plist := m[k]
			writeUvarint(uint64(len(plist)))
			prev := 0
			for j, p := range plist {
				i, ok := pos[p]
				if !ok {
					return fmt.Errorf("social: write index sidecar: posting for %q not in the generation's time index", k)
				}
				if j == 0 {
					writeUvarint(uint64(i))
				} else {
					writeUvarint(uint64(i - prev))
				}
				prev = i
			}
		}
	}
	var hdr [sidecarHdrLen]byte
	copy(hdr[:], sidecarMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload.Bytes(), sidecarTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// decodeTime reconstructs a timestamp from its encoded (Unix
// nanoseconds, zone offset seconds) pair. A zero offset maps to UTC —
// RFC 3339 renders both time.UTC and a zero FixedZone as "Z", so the
// choice cannot change a marshaled listing.
func decodeTime(nano int64, off int) time.Time {
	t := time.Unix(0, nano)
	if off == 0 {
		return t.UTC()
	}
	return t.In(time.FixedZone("", off))
}

// writeStripeIndexFile atomically writes the sidecar for one stripe
// generation, returning the bytes written.
func writeStripeIndexFile(path string, g *shardGen) (int64, error) {
	var n int64
	err := durable.WriteFileAtomic(path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := writeStripeIndex(cw, g); err != nil {
			return err
		}
		n = cw.n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// sliceReader is a bounds-checked cursor over the sidecar payload. All
// reads after the first failure keep failing, so decode loops need no
// per-read error checks — one err test at each structural boundary.
// The s field is one string copy of the whole payload, made up front:
// every decoded string is a substring of it, so a 72k-post stripe pays
// one allocation for all its IDs, authors, texts and keys instead of
// four per post — the difference between a warm open gated by GC and
// one gated by the file read.
type sliceReader struct {
	b   []byte
	s   string
	off int
	err error
}

func (r *sliceReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = sidecarErrf(format, args...)
	}
}

func (r *sliceReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	// Single-byte values dominate (posting gaps, small lengths); the
	// fast path skips binary.Uvarint's loop for them.
	if r.off < len(r.b) {
		if b := r.b[r.off]; b < 0x80 {
			r.off++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *sliceReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *sliceReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("%d bytes wanted at offset %d, %d remain", n, r.off, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *sliceReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("%d string bytes wanted at offset %d, %d remain", n, r.off, len(r.b)-r.off)
		return ""
	}
	out := r.s[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// postArena hands out posting-list slices from shared blocks, so a
// section with tens of thousands of keys costs a handful of
// allocations rather than one per key. Slices are full-capacity
// subslices, so a later append can never bleed into a neighbour.
type postArena struct{ buf []*Post }

func (a *postArena) alloc(n int) []*Post {
	const chunk = 1 << 13
	if n > chunk {
		return make([]*Post, n)
	}
	if n > len(a.buf) {
		a.buf = make([]*Post, chunk)
	}
	out := a.buf[:n:n]
	a.buf = a.buf[n:]
	return out
}

// decodeStripeIndex rebuilds a full stripe generation — posts and
// posting lists — from raw sidecar bytes. Any mismatch — framing,
// checksum, an invalid post, a count or position that contradicts the
// post section — returns an error; the caller falls back to the JSON
// Lines posts file.
func decodeStripeIndex(data []byte) (*shardGen, error) {
	if len(data) < sidecarHdrLen {
		return nil, sidecarErrf("%d bytes is shorter than the header", len(data))
	}
	if string(data[:len(sidecarMagic)]) != sidecarMagic {
		return nil, sidecarErrf("bad magic %q", data[:len(sidecarMagic)])
	}
	plen := binary.LittleEndian.Uint32(data[8:12])
	if plen > maxSidecarLoad || int(plen) != len(data)-sidecarHdrLen {
		return nil, sidecarErrf("payload length %d does not match file size %d", plen, len(data))
	}
	payload := data[sidecarHdrLen:]
	if got, want := crc32.Checksum(payload, sidecarTable), binary.LittleEndian.Uint32(data[12:16]); got != want {
		return nil, sidecarErrf("payload checksum %08x, want %08x", got, want)
	}
	r := &sliceReader{b: payload, s: string(payload)}
	n := r.uvarint()
	// Every post costs well over one payload byte, so a count beyond the
	// remaining payload is corruption — catch it before the allocation.
	if r.err == nil && n > uint64(len(r.b)-r.off) {
		return nil, sidecarErrf("post count %d exceeds remaining payload", n)
	}
	// The id checksum is for offline cross-checks against the JSON Lines
	// file; the payload CRC already covers every ID byte here, so decode
	// skips the recompute.
	r.bytes(4)
	if r.err != nil {
		return nil, r.err
	}
	// One block for every Post struct: the stripe's posts live and die
	// together, and 72k individual allocations are what they would
	// otherwise cost the open (and every later GC scan).
	block := make([]Post, n)
	posts := make([]*Post, n)
	for i := range posts {
		p := &block[i]
		p.ID = r.string()
		p.Author = r.string()
		p.Text = r.string()
		p.Region = Region(r.string())
		nano := r.varint()
		off := r.varint()
		p.Metrics.Views = int(r.uvarint())
		p.Metrics.Likes = int(r.uvarint())
		p.Metrics.Reposts = int(r.uvarint())
		p.Metrics.Replies = int(r.uvarint())
		if r.err != nil {
			return nil, r.err
		}
		p.CreatedAt = decodeTime(nano, int(off))
		if err := p.Validate(); err != nil {
			return nil, sidecarErrf("post %d: %v", i, err)
		}
		posts[i] = p
	}
	g := &shardGen{byTime: posts}
	arena := &postArena{}
	g.byTag = decodeSection(r, posts, arena)
	g.byTerm = decodeSection(r, posts, arena)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, sidecarErrf("%d trailing bytes after the term section", len(payload)-r.off)
	}
	return g, nil
}

// decodeSection decodes one sorted key→postings section against the
// posts order, validating sortedness, strict position ascent and
// bounds as it goes.
func decodeSection(r *sliceReader, posts []*Post, arena *postArena) map[string][]*Post {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Every key costs at least three payload bytes (length, one key
	// byte, posting count), so a count beyond that is corruption — catch
	// it before the allocation, not by crawling to the truncation point.
	if n > uint64(len(r.b)-r.off) {
		r.fail("section key count %d exceeds remaining payload", n)
		return nil
	}
	m := make(map[string][]*Post, n)
	prevKey := ""
	for i := uint64(0); i < n; i++ {
		key := r.string()
		cnt := r.uvarint()
		if r.err != nil {
			return nil
		}
		if key == "" || (i > 0 && key <= prevKey) {
			r.fail("section keys out of order at %q", key)
			return nil
		}
		prevKey = key
		if cnt == 0 || cnt > uint64(len(posts)) {
			r.fail("key %q posting count %d with %d posts", key, cnt, len(posts))
			return nil
		}
		plist := arena.alloc(int(cnt))
		pos := 0
		for j := range plist {
			d := r.uvarint()
			if r.err != nil {
				return nil
			}
			if j == 0 {
				pos = int(d)
			} else {
				if d == 0 {
					r.fail("key %q postings not strictly ascending", key)
					return nil
				}
				pos += int(d)
			}
			if pos < 0 || pos >= len(posts) {
				r.fail("key %q posting position %d with %d posts", key, pos, len(posts))
				return nil
			}
			plist[j] = posts[pos]
		}
		m[key] = plist
	}
	return m
}
