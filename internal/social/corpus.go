package social

// DefaultCorpusSpec returns the reference corpus calibrated to the PSP
// paper's two case studies:
//
//   - ECM reprogramming (Fig. 8/9): physically dominated before 2022
//     (bench flashing), trend inversion toward local OBD attacks from
//     2022 onward — matching the Upstream-confirmed shift the paper
//     reports;
//   - excavator insider attacks (Fig. 12): DPF deletion as the
//     top-attraction topic, followed by EGR removal, AdBlue emulation,
//     chip tuning and speed-limiter removal, plus outsider theft topics
//     that PSP must classify out of the insider weight tuning.
//
// The corpus spans 2019 through April 2023 (the paper appeared in May
// 2023).
func DefaultCorpusSpec(seed int64) GeneratorSpec {
	return GeneratorSpec{
		Seed:            seed,
		FirstYear:       2019,
		LastYear:        2023,
		FinalYearMonths: 4,
		Topics: []TopicSpec{
			{
				Key:          "ecm-reprogramming",
				Tags:         []string{"chiptuning", "ecutune", "remap", "stage1"},
				Applications: []string{"car", "truck"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 400, 2020: 450, 2021: 500, 2022: 600, 2023: 250,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.62, VectorKeyLocal: 0.25,
					VectorKeyAdjacent: 0.08, VectorKeyNetwork: 0.05,
				},
				MixSwitchYear: 2022,
				VectorMixAfter: map[string]float64{
					VectorKeyPhysical: 0.28, VectorKeyLocal: 0.55,
					VectorKeyAdjacent: 0.10, VectorKeyNetwork: 0.07,
				},
				EngagementScale: 1.2,
				PositiveShare:   0.65,
			},
			{
				Key:          "dpf-delete",
				Tags:         []string{"dpfdelete", "dpfoff", "dpfremoval", "dieselpower"},
				Applications: []string{"excavator", "tractor", "truck"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 350, 2020: 420, 2021: 520, 2022: 640, 2023: 260,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.55, VectorKeyLocal: 0.35,
					VectorKeyAdjacent: 0.05, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 1.6,
				PositiveShare:   0.70,
			},
			{
				Key:          "egr-removal",
				Tags:         []string{"egrremoval", "egrdelete", "egroff"},
				Applications: []string{"excavator", "tractor", "truck"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 220, 2020: 260, 2021: 300, 2022: 360, 2023: 150,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.50, VectorKeyLocal: 0.40,
					VectorKeyAdjacent: 0.05, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 1.2,
				PositiveShare:   0.65,
			},
			{
				Key:          "adblue-emulator",
				Tags:         []string{"adblueoff", "defdelete", "adblueemulator"},
				Applications: []string{"excavator", "truck", "tractor"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 160, 2020: 200, 2021: 250, 2022: 320, 2023: 130,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.45, VectorKeyLocal: 0.45,
					VectorKeyAdjacent: 0.05, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 1.1,
				PositiveShare:   0.65,
			},
			{
				Key:          "excavator-chip-tuning",
				Tags:         []string{"excavatortuning", "pumptuning", "dieseltuning"},
				Applications: []string{"excavator", "tractor"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 90, 2020: 110, 2021: 140, 2022: 170, 2023: 70,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.50, VectorKeyLocal: 0.42,
					VectorKeyAdjacent: 0.04, VectorKeyNetwork: 0.04,
				},
				EngagementScale: 0.9,
				PositiveShare:   0.60,
			},
			{
				Key:          "speed-limiter-removal",
				Tags:         []string{"speedlimiteroff", "vmaxoff", "limiterremoval"},
				Applications: []string{"excavator", "truck"},
				Insider:      true,
				YearlyVolume: map[int]int{
					2019: 60, 2020: 75, 2021: 90, 2022: 110, 2023: 45,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.35, VectorKeyLocal: 0.55,
					VectorKeyAdjacent: 0.05, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 0.8,
				PositiveShare:   0.60,
			},
			{
				Key:          "immobilizer-bypass",
				Tags:         []string{"keyfobhack", "relayattack", "immobypass"},
				Applications: []string{"car", "excavator"},
				Insider:      false,
				YearlyVolume: map[int]int{
					2019: 50, 2020: 60, 2021: 80, 2022: 100, 2023: 40,
				},
				VectorMix: map[string]float64{
					VectorKeyAdjacent: 0.70, VectorKeyPhysical: 0.25,
					VectorKeyNetwork: 0.05,
				},
				EngagementScale: 1.0,
			},
			{
				Key:          "gps-tracker-defeat",
				Tags:         []string{"gpsblocker", "trackerjammer"},
				Applications: []string{"excavator", "truck"},
				Insider:      false,
				YearlyVolume: map[int]int{
					2019: 30, 2020: 35, 2021: 45, 2022: 55, 2023: 20,
				},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.60, VectorKeyAdjacent: 0.35,
					VectorKeyNetwork: 0.05,
				},
				EngagementScale: 0.7,
			},
		},
	}
}

// DeepWebCorpusSpec returns a second, outsider-heavy corpus standing in
// for the "deep web level" source the paper's roadmap wants for outsider
// attack analysis: theft tooling chatter dominates, insider tuning
// content is marginal. Federating it with the surface corpus via Multi
// raises the coverage of outsider topics without disturbing the insider
// rankings.
func DeepWebCorpusSpec(seed int64) GeneratorSpec {
	return GeneratorSpec{
		Seed:            seed,
		FirstYear:       2020,
		LastYear:        2023,
		FinalYearMonths: 4,
		Topics: []TopicSpec{
			{
				Key:          "immobilizer-bypass-market",
				Tags:         []string{"relayattack", "keyfobhack", "immobypass"},
				Applications: []string{"car", "excavator"},
				Insider:      false,
				YearlyVolume: map[int]int{2020: 180, 2021: 240, 2022: 320, 2023: 130},
				VectorMix: map[string]float64{
					VectorKeyAdjacent: 0.65, VectorKeyPhysical: 0.30, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 0.6, // low-reach hidden forums
			},
			{
				Key:          "tracker-defeat-market",
				Tags:         []string{"gpsblocker", "trackerjammer"},
				Applications: []string{"excavator", "truck"},
				Insider:      false,
				YearlyVolume: map[int]int{2020: 90, 2021: 120, 2022: 160, 2023: 60},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.60, VectorKeyAdjacent: 0.35, VectorKeyNetwork: 0.05,
				},
				EngagementScale: 0.5,
			},
			{
				Key:          "deep-dpf-chatter",
				Tags:         []string{"dpfdelete"},
				Applications: []string{"excavator"},
				Insider:      true,
				YearlyVolume: map[int]int{2020: 20, 2021: 25, 2022: 30, 2023: 12},
				VectorMix: map[string]float64{
					VectorKeyPhysical: 0.60, VectorKeyLocal: 0.40,
				},
				EngagementScale: 0.4,
				PositiveShare:   0.5,
			},
		},
	}
}

// SeedKeywords returns the manually curated attack-keyword seeds the
// paper lists for the first PSP iteration (Fig. 7 blocks 3–4).
func SeedKeywords() []string {
	return []string{
		"dpfdelete", "egrremoval", "egrdelete", "egroff",
		"dieselpower", "chiptuning",
	}
}

// DefaultStore generates the reference corpus and loads it into a fresh
// store.
func DefaultStore(seed int64) (*Store, error) {
	return DefaultStoreShards(seed, 0)
}

// DefaultStoreShards is DefaultStore with an explicit shard count
// (see NewStoreShards); the daemons' -shards flag feeds through here.
// The shard count does not affect search results, only concurrency.
func DefaultStoreShards(seed int64, shards int) (*Store, error) {
	posts, err := Generate(DefaultCorpusSpec(seed))
	if err != nil {
		return nil, err
	}
	s := NewStoreShards(shards)
	if err := s.Add(posts...); err != nil {
		return nil, err
	}
	return s, nil
}
