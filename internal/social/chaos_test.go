// Chaos tests: disk faults through the durable seam, degraded
// read-only mode, federated partial failure, circuit-breaker
// transitions, and client retry under a flaky transport. All
// deterministic (seeded injectors, fake clocks) and -race clean.
package social

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/fault"
)

// TestChaosStoreDegradedReadOnly: a persistent fsync failure must flip
// the store into read-only degraded mode — ingest refused with the
// typed sentinel, reads untouched — and a restart must recover every
// acknowledged post.
func TestChaosStoreDegradedReadOnly(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated fsync failure")
	fs := &fault.FS{Sync: fault.New(fault.Config{FailFrom: 4, Err: boom})}
	s, err := OpenStoreDir(dir, DurableOptions{Shards: 1, CompactEvery: -1, CompactRecords: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}

	var acked []*Post
	var failErr error
	for i := 0; failErr == nil && i < 20; i++ {
		p := durPost(i, i)
		if err := s.Add(p); err != nil {
			failErr = err
		} else {
			acked = append(acked, p)
		}
	}
	if failErr == nil {
		t.Fatal("no Add failed despite the injected fsync fault")
	}
	if len(acked) == 0 {
		t.Fatal("no Add was acknowledged before the fault")
	}
	if !errors.Is(s.Degraded(), ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", s.Degraded())
	}
	var de *DegradedError
	if !errors.As(s.Degraded(), &de) || !errors.Is(de.Cause, boom) {
		t.Fatalf("degraded cause = %v, want %v", s.Degraded(), boom)
	}

	// Ingest now fails fast with the sentinel, without touching the WAL.
	if err := s.Add(durPost(100, 2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Add while degraded = %v, want ErrDegraded", err)
	}

	// Reads keep serving the committed state.
	if got := s.Len(); got != len(acked) {
		t.Fatalf("Len while degraded = %d, want %d", got, len(acked))
	}
	page, err := s.Search(context.Background(), Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatalf("Search while degraded: %v", err)
	}
	if len(page.Posts) != len(acked) {
		t.Fatalf("Search while degraded returned %d posts, want %d", len(page.Posts), len(acked))
	}
	if s.Stats().Degraded != true || s.Stats().DegradedCause == "" {
		t.Fatalf("Stats does not report degradation: %+v", s.Stats())
	}

	// Restart on a healthy disk: every acknowledged post recovers and
	// the store is writable again.
	s.closeAbrupt()
	s2, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1, CompactRecords: -1})
	if err != nil {
		t.Fatalf("reopen after degraded crash: %v", err)
	}
	defer s2.Close()
	if s2.Degraded() != nil {
		t.Fatalf("reopened store still degraded: %v", s2.Degraded())
	}
	for _, p := range acked {
		if s2.Post(p.ID) == nil {
			t.Fatalf("acknowledged post %s lost across restart", p.ID)
		}
	}
	if err := s2.Add(durPost(200, 3)); err != nil {
		t.Fatalf("Add after restart: %v", err)
	}
}

// TestChaosTornWriteByteIdentity: when the disk tears a WAL write, the
// reopened store must serve a listing byte-identical to exactly the
// acknowledged posts — the torn record is truncated, not half-applied.
func TestChaosTornWriteByteIdentity(t *testing.T) {
	dir := t.TempDir()
	fs := &fault.FS{Write: fault.New(fault.Config{FailFrom: 5}), Torn: true}
	s, err := OpenStoreDir(dir, DurableOptions{Shards: 1, CompactEvery: -1, CompactRecords: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}

	oracle := NewStore() // in-memory twin holding only acknowledged posts
	sawFailure := false
	for i := 0; i < 12; i++ {
		p := durPost(i, i%5)
		if err := s.Add(p); err != nil {
			sawFailure = true
		} else if err := oracle.Add(clonePost(p)); err != nil {
			t.Fatal(err)
		}
	}
	if !sawFailure {
		t.Fatal("no Add failed despite the injected torn write")
	}
	s.closeAbrupt()

	s2, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1, CompactRecords: -1})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	if got, want := listAll(t, s2), listAll(t, oracle); string(got) != string(want) {
		t.Fatalf("recovered listing differs from acknowledged posts:\n got: %s\nwant: %s", got, want)
	}
}

func clonePost(p *Post) *Post {
	cp := *p
	return &cp
}

// TestChaosAcknowledgedNeverLostConcurrent: concurrent writers against
// a randomly failing, tearing disk — every Add acknowledged before the
// crash must survive the restart. The seeded injector makes the
// failure schedule reproducible.
func TestChaosAcknowledgedNeverLostConcurrent(t *testing.T) {
	dir := t.TempDir()
	fs := &fault.FS{
		Write: fault.New(fault.Config{Seed: 7, ErrorRate: 0.05}),
		Torn:  true,
	}
	s, err := OpenStoreDir(dir, DurableOptions{Shards: 4, CompactEvery: -1, CompactRecords: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 40
	var mu sync.Mutex
	acked := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := &Post{
					ID:        fmt.Sprintf("chaos-%d-%03d", w, i),
					Author:    fmt.Sprintf("bot-%d", w),
					Text:      fmt.Sprintf("chaos #walchaos payload %d-%d", w, i),
					CreatedAt: time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, (w*perWorker+i)%90),
					Region:    RegionEurope,
					Metrics:   Metrics{Views: i},
				}
				if err := s.Add(p); err == nil {
					mu.Lock()
					acked[p.ID] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("no Add was acknowledged")
	}
	if len(acked) == workers*perWorker && s.Degraded() == nil {
		t.Fatal("injector never fired; chaos schedule is vacuous")
	}
	s.closeAbrupt()

	s2, err := OpenStoreDir(dir, DurableOptions{CompactEvery: -1, CompactRecords: -1})
	if err != nil {
		t.Fatalf("reopen after chaos run: %v", err)
	}
	defer s2.Close()
	for id := range acked {
		if s2.Post(id) == nil {
			t.Fatalf("acknowledged post %s lost across restart", id)
		}
	}
}

// fakeClock is a deterministic breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// multiFixture builds a two-backend federation: healthy "alpha" and a
// fault-wrapped "beta" whose injector starts disabled (healthy).
func multiFixture(t *testing.T, opts MultiOptions, alphaDays, betaDays []int) (*Multi, *fault.Injector) {
	t.Helper()
	mk := func(name string, days []int) *Store {
		s := NewStore()
		for _, d := range days {
			p := &Post{
				ID:        fmt.Sprintf("d%02d", d),
				Author:    "author-" + name,
				Text:      "federated #chaos traffic",
				CreatedAt: time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, d),
				Region:    RegionEurope,
				Metrics:   Metrics{Views: d},
			}
			if err := s.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	inj := fault.New(fault.Config{FailFrom: 1})
	inj.Disable()
	m, err := NewMultiOptions(opts,
		PlatformSource{Name: "alpha", Searcher: mk("alpha", alphaDays)},
		PlatformSource{Name: "beta", Searcher: WithFault(mk("beta", betaDays), inj)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m, inj
}

func backendStatus(t *testing.T, page *Page, name string) BackendStatus {
	t.Helper()
	for _, st := range page.Backends {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("page has no status for backend %q: %+v", name, page.Backends)
	return BackendStatus{}
}

// TestChaosMultiPartialPage: with Partial set, a page with one failing
// backend serves the healthy backend's posts annotated as degraded;
// with every backend failing it errors; in strict mode any failure
// fails the page.
func TestChaosMultiPartialPage(t *testing.T) {
	m, inj := multiFixture(t, MultiOptions{Partial: true}, []int{1, 3, 5}, []int{2, 4, 6})
	ctx := context.Background()

	// Healthy baseline: both backends contribute, nothing degraded.
	page, err := m.Search(ctx, Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if page.Degraded || len(page.Posts) != 6 || page.TotalMatches != 6 {
		t.Fatalf("healthy page: degraded=%v posts=%d total=%d", page.Degraded, len(page.Posts), page.TotalMatches)
	}
	if page.Backends != nil {
		t.Fatalf("healthy page carries backend annotations: %+v", page.Backends)
	}

	// beta down: the page degrades to alpha's posts.
	inj.Enable()
	page, err = m.Search(ctx, Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatalf("partial mode failed outright: %v", err)
	}
	if !page.Degraded {
		t.Fatal("page with a failing backend not marked Degraded")
	}
	if len(page.Posts) != 3 || page.TotalMatches != 3 {
		t.Fatalf("degraded page: posts=%d total=%d, want alpha's 3", len(page.Posts), page.TotalMatches)
	}
	for _, p := range page.Posts {
		if !strings.HasPrefix(p.ID, "alpha:") {
			t.Fatalf("degraded page contains non-alpha post %s", p.ID)
		}
	}
	if st := backendStatus(t, page, "alpha"); !st.Healthy {
		t.Fatalf("alpha annotated unhealthy: %+v", st)
	}
	st := backendStatus(t, page, "beta")
	if st.Healthy || !strings.Contains(st.Err, "injected") {
		t.Fatalf("beta annotation = %+v, want unhealthy with the injected error", st)
	}

	// All backends down: even partial mode errors.
	alphaDown, err := NewMultiOptions(MultiOptions{Partial: true},
		PlatformSource{Name: "only", Searcher: WithFault(NewStore(), fault.New(fault.Config{FailFrom: 1}))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alphaDown.Search(ctx, Query{}); err == nil {
		t.Fatal("partial mode with zero healthy backends must error")
	}

	// Strict mode: one failing backend fails the page with its name.
	strict, injStrict := multiFixture(t, MultiOptions{}, []int{1}, []int{2})
	injStrict.Enable()
	if _, err := strict.Search(ctx, Query{}); err == nil {
		t.Fatal("strict mode served a page despite a failing backend")
	} else if !strings.Contains(err.Error(), "beta") || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("strict error = %v, want the beta injected failure", err)
	}
}

// TestChaosBreakerLifecycle: consecutive failures open the backend's
// breaker (fail-fast skips, no traffic to the backend), the cooldown
// admits a half-open probe, a failed probe re-opens, and a successful
// probe re-closes with the backend back in the merge.
func TestChaosBreakerLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	m, inj := multiFixture(t, MultiOptions{
		Partial:          true,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		now:              clock.Now,
	}, []int{1, 3}, []int{2, 4})
	ctx := context.Background()
	q := Query{MaxResults: MaxPageSize}

	inj.Enable()
	for i := 0; i < 2; i++ { // two consecutive failures reach the threshold
		if _, err := m.Search(ctx, q); err != nil {
			t.Fatalf("partial page %d: %v", i, err)
		}
	}
	if got := m.BackendState("beta"); got != BreakerOpen {
		t.Fatalf("after %d failures state = %v, want open", 2, got)
	}

	// Open: beta is skipped fail-fast — the injector sees no traffic.
	opsBefore := inj.Ops()
	page, err := m.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Ops() != opsBefore {
		t.Fatal("open breaker still sent traffic to the broken backend")
	}
	st := backendStatus(t, page, "beta")
	if st.Healthy || !strings.Contains(st.Err, "skipped") {
		t.Fatalf("skip annotation = %+v", st)
	}
	if st.Breaker != "open" {
		t.Fatalf("skip annotation breaker = %q, want open", st.Breaker)
	}

	// Cooldown elapses; the backend is still broken: the single
	// half-open probe fails and the breaker re-opens.
	clock.Advance(61 * time.Second)
	probeOps := inj.Ops()
	if _, err := m.Search(ctx, q); err != nil {
		t.Fatal(err)
	}
	if inj.Ops() != probeOps+1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", inj.Ops()-probeOps)
	}
	if got := m.BackendState("beta"); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Backend recovers; after the next cooldown the probe succeeds and
	// the breaker closes — beta's posts rejoin the page.
	inj.Disable()
	clock.Advance(61 * time.Second)
	page, err = m.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BackendState("beta"); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if page.Degraded {
		t.Fatal("page after recovery still marked degraded")
	}
	if len(page.Posts) != 4 {
		t.Fatalf("recovered page has %d posts, want 4 (both backends)", len(page.Posts))
	}
	if page.Backends != nil {
		t.Fatalf("healthy page carries backend annotations: %+v", page.Backends)
	}
}

// TestChaosMultiCursorStableAcrossRecovery: a federated listing paged
// through a backend outage must stay cursor-stable — no duplicates, no
// replays — and the recovered backend rejoins from the current cursor.
func TestChaosMultiCursorStableAcrossRecovery(t *testing.T) {
	m, inj := multiFixture(t, MultiOptions{Partial: true},
		[]int{1, 3, 5, 7, 9, 11}, []int{2, 4, 6, 8, 10, 12})
	ctx := context.Background()

	seen := make(map[string]bool)
	fetch := func(token string, wantIDs ...string) *Page {
		t.Helper()
		page, err := m.Search(ctx, Query{MaxResults: 4, PageToken: token})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, p := range page.Posts {
			if seen[p.ID] {
				t.Fatalf("post %s served twice across the outage", p.ID)
			}
			seen[p.ID] = true
			got = append(got, p.ID)
		}
		if len(got) != len(wantIDs) {
			t.Fatalf("page = %v, want %v", got, wantIDs)
		}
		for i := range wantIDs {
			if got[i] != wantIDs[i] {
				t.Fatalf("page = %v, want %v", got, wantIDs)
			}
		}
		return page
	}

	// Page 1, both healthy: days 1-4 interleaved.
	page := fetch("", "alpha:d01", "beta:d02", "alpha:d03", "beta:d04")

	// beta goes down mid-listing: the next page serves alpha alone.
	inj.Enable()
	page = fetch(page.NextToken, "alpha:d05", "alpha:d07", "alpha:d09", "alpha:d11")
	if !page.Degraded {
		t.Fatal("outage page not marked degraded")
	}

	// beta recovers: it rejoins from the cursor — days 6-10 fell inside
	// the degraded window and are not replayed (keyset cursors never go
	// backwards); only day 12 remains.
	inj.Disable()
	page = fetch(page.NextToken, "beta:d12")
	if page.Degraded {
		t.Fatal("recovered page still marked degraded")
	}
	if page.NextToken != "" {
		// Either no token, or a token leading to an empty final page.
		final, err := m.Search(ctx, Query{MaxResults: 4, PageToken: page.NextToken})
		if err != nil {
			t.Fatal(err)
		}
		if len(final.Posts) != 0 {
			t.Fatalf("listing did not terminate: %d extra posts", len(final.Posts))
		}
	}
}

// TestChaosClientRetriesTransient: gateway-shaped 5xx responses and
// injected transport faults retry with backoff and then succeed.
func TestChaosClientRetriesTransient(t *testing.T) {
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	inner := NewServer(store, nil).Handler()
	var mu sync.Mutex
	failures := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client())
	c.RetryBase = 8 * time.Millisecond
	var waits []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	c.jitter = func(d time.Duration) time.Duration { return d } // deterministic

	page, err := c.Search(context.Background(), Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatalf("search through transient 503s: %v", err)
	}
	if len(page.Posts) == 0 {
		t.Fatal("retried search returned no posts")
	}
	if len(waits) != 2 || waits[0] != 8*time.Millisecond || waits[1] != 16*time.Millisecond {
		t.Fatalf("backoff waits = %v, want [8ms 16ms]", waits)
	}

	// Transport-level faults (connection reset shapes) retry the same way.
	c2 := NewClient(srv.URL, &http.Client{
		Transport: &fault.RoundTripper{Inj: fault.New(fault.Config{FailOps: []int{1}})},
	})
	c2.sleep = func(context.Context, time.Duration) error { return nil }
	if _, err := c2.Search(context.Background(), Query{MaxResults: 1}); err != nil {
		t.Fatalf("search through injected transport fault: %v", err)
	}
}

// TestChaosClientRetryExhaustion: a persistently failing backend runs
// out of retries and surfaces the final error.
func TestChaosClientRetryExhaustion(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client())
	c.MaxRetries = 2
	c.sleep = func(context.Context, time.Duration) error { return nil }
	if _, err := c.Search(context.Background(), Query{}); err == nil {
		t.Fatal("search succeeded against a permanently failing backend")
	} else if !strings.Contains(err.Error(), "502") {
		t.Fatalf("error = %v, want the final 502", err)
	}
	if requests != 3 {
		t.Fatalf("made %d requests, want 3 (initial + 2 retries)", requests)
	}
}

// TestChaosClientRateLimitWaitHonorsContext: a cancelled context must
// cut a Retry-After wait short instead of serving it out — the bug this
// release fixed.
func TestChaosClientRateLimitWaitHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client()) // real ctxSleep
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Search(ctx, Query{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("search = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rate-limit wait ignored the context for %v", elapsed)
	}
}
