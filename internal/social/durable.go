package social

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/obs"
)

// Durable store layout under a data directory:
//
//	<dir>/MANIFEST.json                    snapshot manifest (durable.Manifest)
//	<dir>/snap/stripe-<i>-<gen>.jsonl      per-stripe post snapshots (JSON Lines)
//	<dir>/snap/stripe-<i>-<gen>.idx        per-stripe index sidecars (see sidecar.go)
//	<dir>/wal/stripe-<i>/*.seg             one segmented WAL per lock stripe
//
// Directories written before snapshot indexing hold one whole-corpus
// snap/snap-<gen>.jsonl instead (manifest version 0); they open via the
// re-tokenize path and upgrade in place at their first compaction.
//
// Every stripe owns its own log with its own group-commit fsync queue,
// so concurrent ingest across stripes never serializes on one disk
// queue — the per-stripe share-nothing property of the in-memory Add
// path extends to durability. A batch is acknowledged once every
// touched stripe's sub-batch is fsync'd; only then does it commit to
// the in-memory indices, so an acknowledged Add can never be lost. An
// Add interrupted mid-batch (a crash, or a log failing with some
// stripes already fsync'd) resolves to the disk truth: exactly the
// sub-batches whose records are durable surface — by recovery replay,
// or immediately via the partial-insert error path — and never a post
// that reached no log.

// DurableOptions tunes OpenStoreDir.
type DurableOptions struct {
	// Shards is the stripe count for a fresh data directory (≤ 0 uses
	// DefaultShards). An existing directory's manifest is authoritative:
	// a non-zero Shards that disagrees with it is an error, because the
	// bucket→stripe mapping decides which log holds which post.
	Shards int
	// SegmentBytes is the WAL segment roll threshold
	// (durable.DefaultSegmentBytes when 0).
	SegmentBytes int64
	// CompactEvery is the background snapshot-compaction period
	// (default 30s; negative disables the background pass — Flush and
	// Close still compact).
	CompactEvery time.Duration
	// CompactRecords triggers an early compaction once this many WAL
	// records accumulated since the last snapshot (default 8192;
	// negative disables the record trigger).
	CompactRecords int
	// Seed supplies the initial corpus for a directory that has never
	// completed seeding. It runs after recovery, writes through the WAL,
	// compacts into the first snapshot, and is recorded with a marker
	// file — so a crash mid-seed resumes (already-durable posts are
	// skipped by ID) instead of silently serving a partial corpus, and
	// a completed directory never re-seeds.
	Seed func() ([]*Post, error)
	// Metrics, when set, is attached to the store before recovery: the
	// stripe logs record into its WAL surface, recovery duration and
	// recovered post count land in its gauges, and the opened store
	// behaves as if SetMetrics had been called.
	Metrics *StoreMetrics
	// FS, when set, replaces the filesystem beneath the stripe WALs'
	// segment writes (durable.LogOptions.FS) — the disk-fault injection
	// seam the chaos tests drive (internal/fault.FS).
	FS durable.FS
}

const (
	walDirName          = "wal"
	snapDirName         = "snap"
	seededMarker        = "SEEDED"
	defaultCompactEvery = 30 * time.Second
	defaultCompactRecs  = 8192
)

// DurableCursor is a position in a durable store's write-ahead logs:
// one replay floor per stripe. The monitor persists it alongside its
// assessment so a restarted daemon can ask for exactly the posts that
// arrived after the persisted state (PostsSince) instead of re-running
// cold.
type DurableCursor []uint64

// durStripe tracks one stripe's durable-but-unapplied WAL sequences.
// The log's OnDurable hook registers sequences in order (on the log's
// writer goroutine), Add removes them after the in-memory commit, and
// the floor — the highest sequence below which everything is applied —
// is what snapshots record: a post the indices have not absorbed yet
// can never be truncated out of the WAL.
type durStripe struct {
	mu         sync.Mutex
	maxDurable uint64
	pending    map[uint64]struct{}
	// dirty counts WAL records applied to the in-memory indices since
	// the stripe's last snapshot (plus force-dirty markers from fallback
	// recovery); non-zero is what makes a compaction rewrite the stripe.
	// markApplied adds after the index commit, compact subtracts exactly
	// the count it captured — records landing mid-compaction keep the
	// stripe dirty for the next pass instead of being lost to a blind
	// reset.
	dirty atomic.Int64
}

// storeDurability is a Store's persistence engine: per-stripe logs, the
// manifest, and the background compactor.
type storeDurability struct {
	dir  string
	logs []*durable.Log

	stripes []durStripe

	// records counts WAL appends since the last snapshot; the kick
	// channel wakes the compactor early once CompactRecords accumulate.
	records    atomic.Int64
	compactRec int64
	kick       chan struct{}

	// cmu serializes compaction, manifest replacement, WAL truncation
	// and PostsSince scans. compactErr remembers the most recent
	// compaction failure (cleared by the next success) so background
	// failures — which are retried every tick while the records
	// counter stays non-zero — are observable, not silent.
	cmu        sync.Mutex
	man        *durable.Manifest
	compactErr error

	// Cumulative incremental-compaction volume (bytes written, stripes
	// rewritten) and the last recovery's per-stripe outcome split —
	// exposed through StoreStats so tests and benchmarks can assert the
	// delta-bounded behavior without a metrics registry.
	compactedBytes   atomic.Int64
	compactedStripes atomic.Int64
	recIndexed       int
	recRebuilt       int

	stop      chan struct{}
	done      chan struct{}
	loop      bool // background compactor running
	closeOnce sync.Once
	closeErr  error
}

// OpenStoreDir opens (or initializes) a durable store in dir and
// recovers its contents: each stripe's post snapshot is read and its
// search indices are loaded directly from the index sidecar — warm open
// is a file read plus a varint scan, no re-tokenization — then each
// stripe's WAL tail above the manifest's floor is replayed (torn or
// corrupt tail records are truncated, never fatal). A stripe whose
// sidecar is missing, corrupt or version-skewed falls back to
// re-tokenizing its posts file, and a pre-indexing directory (one
// whole-corpus snapshot, manifest version 0) loads entirely through
// that fallback — degraded open speed, never a failed open; the next
// compaction rewrites what the fallback had to rebuild. The returned
// store behaves exactly like an in-memory one, plus: Add acknowledges
// only after its batch is fsync'd (group commit), a background pass
// compacts dirty stripes into snapshots, and Close flushes. Search
// results are byte-identical to an in-memory store holding the same
// posts.
func OpenStoreDir(dir string, opts DurableOptions) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, snapDirName), 0o755); err != nil {
		return nil, fmt.Errorf("social: create data dir: %w", err)
	}
	man, err := durable.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if man != nil {
		if opts.Shards > 0 && opts.Shards != man.Shards {
			return nil, fmt.Errorf("social: data dir %s was created with %d shards, not %d (the stripe mapping decides which log holds which post)", dir, man.Shards, opts.Shards)
		}
		shards = man.Shards
	} else {
		man = &durable.Manifest{
			Version: durable.ManifestVersion,
			Shards:  shards,
			Floors:  make([]uint64, shards),
			Stripes: make([]durable.StripeSnapshot, shards),
		}
		if err := man.Write(dir); err != nil {
			return nil, err
		}
	}

	recoverStart := time.Now()
	s := NewStoreShards(shards)
	s.SetMetrics(opts.Metrics)
	d := &storeDurability{
		dir:        dir,
		logs:       make([]*durable.Log, shards),
		stripes:    make([]durStripe, shards),
		compactRec: int64(opts.CompactRecords),
		kick:       make(chan struct{}, 1),
		man:        man,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if d.compactRec == 0 {
		d.compactRec = defaultCompactRecs
	}
	for i := range d.stripes {
		d.stripes[i].pending = make(map[uint64]struct{})
	}

	// Snapshot first: it holds everything at or below the floors.
	snapDir := filepath.Join(dir, snapDirName)
	var phases recoveryPhases
	switch {
	case man.Version >= 2:
		// Warm path: one parallel load per stripe, each installing its
		// sidecar indices directly (or falling back to re-tokenization).
		// Stripe loads are independent — distinct shards, and the ID
		// registry is stripe-locked — so the bounded fan-out is safe.
		errs := make([]error, shards)
		forEachBounded(shards, func(i int) {
			errs[i] = d.loadStripe(s, snapDir, man.Stripes[i], i, &phases)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	case man.Snapshot != "":
		// Pre-indexing directory: one whole-corpus snapshot, re-tokenized
		// through Add. Every stripe is dirty afterwards, so the first
		// compaction upgrades the directory to the per-stripe format.
		t0 := time.Now()
		if err := loadSnapshot(s, filepath.Join(snapDir, man.Snapshot)); err != nil {
			return nil, err
		}
		phases.rebuild.Add(int64(time.Since(t0)))
		phases.rebuilt.Add(int64(shards))
		for i := range d.stripes {
			d.stripes[i].dirty.Add(1)
		}
	}
	removeOrphanSnapshots(snapDir, man)

	// Then each stripe's WAL tail. Replay overlaps the snapshot by up
	// to one segment (truncation is whole-segment) and may overlap it
	// further when the floor was taken conservatively mid-ingest, so
	// records are deduplicated by post ID.
	fail := func(err error) (*Store, error) {
		for _, log := range d.logs {
			if log != nil {
				log.Close()
			}
		}
		return nil, err
	}
	var walMetrics *durable.LogMetrics
	if opts.Metrics != nil {
		walMetrics = opts.Metrics.WAL
	}
	for i := 0; i < shards; i++ {
		i := i
		log, err := durable.OpenLog(d.stripeDir(i), durable.LogOptions{
			SegmentBytes: opts.SegmentBytes,
			OnDurable:    func(seq uint64) { d.onDurable(i, seq) },
			Metrics:      walMetrics,
			FS:           opts.FS,
		})
		if err != nil {
			return fail(err)
		}
		d.logs[i] = log
		t0 := time.Now()
		replayed := int64(0)
		err = log.Replay(man.Floors[i], func(_ uint64, payload []byte) error {
			replayed++
			return replayBatch(s, payload)
		})
		phases.replay.Add(int64(time.Since(t0)))
		if err != nil {
			return fail(fmt.Errorf("social: replay stripe %d: %w", i, err))
		}
		d.stripes[i].maxDurable = log.LastSeq()
		if replayed > 0 {
			d.stripes[i].dirty.Add(replayed)
		}
	}

	s.dur = d
	d.recIndexed = int(phases.indexed.Load())
	d.recRebuilt = int(phases.rebuilt.Load())
	if m := opts.Metrics; m != nil {
		m.RecoverySeconds.Set(time.Since(recoverStart).Seconds())
		m.RecoveredPosts.Set(float64(s.Len()))
		m.RecoverySnapshotSeconds.Set(phases.snapshot.seconds())
		m.RecoveryIndexSeconds.Set(phases.load.seconds())
		m.RecoveryRebuildSeconds.Set(phases.rebuild.seconds())
		m.RecoveryReplaySeconds.Set(phases.replay.seconds())
	}
	if opts.Seed != nil {
		if err := d.seed(s, opts.Seed); err != nil {
			for _, log := range d.logs {
				log.Close()
			}
			return nil, err
		}
	}
	every := opts.CompactEvery
	if every == 0 {
		every = defaultCompactEvery
	}
	if every > 0 {
		d.loop = true
		go d.compactLoop(s, every)
	}
	return s, nil
}

// seed runs the one-time corpus seed: skipped once the marker exists;
// otherwise the seed posts stream through the WAL (minus any already
// durable from a crashed earlier attempt), compact into the first
// snapshot, and only then does the marker commit — a kill -9 at any
// point either resumes or finds the seed complete, never a silently
// partial corpus.
func (d *storeDurability) seed(s *Store, seed func() ([]*Post, error)) error {
	marker := filepath.Join(d.dir, seededMarker)
	if _, err := os.Stat(marker); err == nil {
		return nil
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("social: stat seed marker: %w", err)
	}
	posts, err := seed()
	if err != nil {
		return fmt.Errorf("social: seed corpus: %w", err)
	}
	fresh := posts[:0]
	for _, p := range posts {
		if p != nil && s.Post(p.ID) == nil {
			fresh = append(fresh, p)
		}
	}
	if err := s.Add(fresh...); err != nil {
		return fmt.Errorf("social: seed corpus: %w", err)
	}
	if err := d.compact(s); err != nil {
		return err
	}
	return durable.WriteFileAtomic(marker, func(w io.Writer) error {
		_, err := io.WriteString(w, "seed complete\n")
		return err
	})
}

// stripeDir is stripe i's WAL directory.
func (d *storeDurability) stripeDir(i int) string {
	return filepath.Join(d.dir, walDirName, fmt.Sprintf("stripe-%04d", i))
}

// phaseNanos accumulates one recovery phase's duration in nanoseconds.
type phaseNanos struct{ atomic.Int64 }

func (p *phaseNanos) seconds() float64 { return float64(p.Load()) / 1e9 }

// recoveryPhases breaks one recovery down by phase: posts files read,
// sidecar indices decoded, fallback re-tokenization, WAL replay — plus
// the per-stripe outcome split. Stripe loads run in parallel, so phase
// times are summed across stripes (CPU seconds); the top-level recovery
// gauge stays wall-clock.
type recoveryPhases struct {
	snapshot phaseNanos // post snapshots read + decoded
	load     phaseNanos // index sidecars decoded
	rebuild  phaseNanos // fallback re-tokenization
	replay   phaseNanos // WAL tails replayed
	indexed  atomic.Int64
	rebuilt  atomic.Int64
}

// loadStripe recovers one stripe from its manifest entry. The warm
// path never touches the JSON Lines posts file: the sidecar carries the
// stripe's posts and posting lists in one checksummed binary read, and
// installs after a routing-and-order check against this store's stripe
// map. Everything about the sidecar degrades rather than fails — a
// missing, torn, corrupt, version-skewed or mis-routed sidecar falls
// back to reading and re-tokenizing the authoritative posts file (and
// leaves the stripe dirty so the next compaction writes a fresh
// sidecar). Only the posts file itself is load-bearing: unreadable or
// invalid is a failed open, exactly like the whole-corpus loader. A
// posts file whose order or routing disagrees with this store falls
// back to the generic Add path with every stripe dirtied, because its
// posts just landed wherever shardFor routes them now.
func (d *storeDurability) loadStripe(s *Store, snapDir string, ent durable.StripeSnapshot, i int, ph *recoveryPhases) error {
	if ent.Posts == "" {
		return nil
	}
	if ent.Index != "" {
		t0 := time.Now()
		g, derr := readStripeIndex(filepath.Join(snapDir, ent.Index))
		if derr == nil && !stripeOrdered(s, g.byTime, i) {
			derr = sidecarErrf("stripe %d posts mis-routed for this store", i)
		}
		if derr == nil {
			derr = s.installStripeBase(i, g)
		}
		ph.load.Add(int64(time.Since(t0)))
		if derr == nil {
			ph.indexed.Add(1)
			return nil
		}
	}
	t0 := time.Now()
	posts, err := readPostsFile(filepath.Join(snapDir, ent.Posts))
	ph.snapshot.Add(int64(time.Since(t0)))
	if err != nil {
		return err
	}
	ordered := stripeOrdered(s, posts, i)
	t0 = time.Now()
	err = s.Add(posts...)
	ph.rebuild.Add(int64(time.Since(t0)))
	if err != nil {
		return fmt.Errorf("social: load snapshot stripe %d: %w", i, err)
	}
	ph.rebuilt.Add(1)
	if ordered {
		d.stripes[i].dirty.Add(1)
	} else {
		for j := range d.stripes {
			d.stripes[j].dirty.Add(1)
		}
	}
	return nil
}

// stripeOrdered reports whether posts all route to stripe i of this
// store and ascend strictly in (CreatedAt, ID) — the precondition for
// installing them as stripe i's base generation.
func stripeOrdered(s *Store, posts []*Post, i int) bool {
	for k, p := range posts {
		if s.shardFor(p.CreatedAt) != i || (k > 0 && !postLess(posts[k-1], p)) {
			return false
		}
	}
	return true
}

// readStripeIndex reads and decodes one stripe's index sidecar.
func readStripeIndex(path string) (*shardGen, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeStripeIndex(data)
}

// installStripeBase publishes g as stripe i's base generation and
// registers its posts in the ID registry — the warm-open path that
// bypasses tokenization entirely. Posts are bucketed by ID stripe
// first so each registry lock is taken once per bucket, not once per
// post. A duplicate ID means the sidecar claims a post some other
// snapshot already holds; the install rolls its own registrations back
// (by pointer identity, so a concurrent stripe's entries are never
// touched) and reports, leaving the registry as it found it so the
// caller's fallback to the authoritative posts file starts clean.
func (s *Store) installStripeBase(i int, g *shardGen) error {
	var buckets [idStripes][]*Post
	per := len(g.byTime)/idStripes + 1
	for _, p := range g.byTime {
		k := idStripeOf(p.ID)
		if buckets[k] == nil {
			buckets[k] = make([]*Post, 0, per)
		}
		buckets[k] = append(buckets[k], p)
	}
	var dup error
	for k, ps := range buckets {
		if len(ps) == 0 {
			continue
		}
		st := &s.ids[k]
		st.mu.Lock()
		for _, p := range ps {
			if _, seen := st.posts[p.ID]; seen {
				dup = sidecarErrf("duplicate post ID %s", p.ID)
				break
			}
			st.posts[p.ID] = p
		}
		st.mu.Unlock()
		if dup != nil {
			break
		}
	}
	if dup != nil {
		for k, ps := range buckets {
			if len(ps) == 0 {
				continue
			}
			st := &s.ids[k]
			st.mu.Lock()
			for _, p := range ps {
				if st.posts[p.ID] == p {
					delete(st.posts, p.ID)
				}
			}
			st.mu.Unlock()
		}
		return dup
	}
	sh := s.shards[i]
	sh.mu.Lock()
	sh.snap.Store(&shardSnapshot{base: g, delta: emptyGen})
	sh.mu.Unlock()
	return nil
}

// loadSnapshot reads a snapshot file into the store (no WAL attached
// yet, so nothing is re-logged).
func loadSnapshot(s *Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("social: open snapshot: %w", err)
	}
	defer f.Close()
	posts, err := ReadPosts(f)
	if err != nil {
		return fmt.Errorf("social: snapshot %s: %w", path, err)
	}
	if err := s.Add(posts...); err != nil {
		return fmt.Errorf("social: load snapshot %s: %w", path, err)
	}
	return nil
}

// replayBatch applies one WAL record — a JSON batch of posts — to the
// store, skipping posts the snapshot (or an earlier record) already
// delivered.
func replayBatch(s *Store, payload []byte) error {
	var posts []*Post
	if err := json.Unmarshal(payload, &posts); err != nil {
		// Payloads were validated before they were logged and are
		// CRC-protected on disk; an undecodable one is a logic error
		// worth surfacing, not silently dropping.
		return fmt.Errorf("decode wal batch: %w", err)
	}
	fresh := posts[:0]
	for _, p := range posts {
		if p == nil || s.Post(p.ID) != nil {
			continue
		}
		fresh = append(fresh, p)
	}
	return s.Add(fresh...)
}

// removeOrphanSnapshots deletes snapshot and sidecar files the manifest
// no longer references — the leftovers of a compaction that crashed
// between writing its files and committing its manifest.
func removeOrphanSnapshots(snapDir string, man *durable.Manifest) {
	keep := make(map[string]bool, 2*len(man.Stripes)+1)
	if man.Snapshot != "" {
		keep[man.Snapshot] = true
	}
	for _, ent := range man.Stripes {
		if ent.Posts != "" {
			keep[ent.Posts] = true
		}
		if ent.Index != "" {
			keep[ent.Index] = true
		}
	}
	entries, err := os.ReadDir(snapDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if ext := filepath.Ext(name); ext == ".jsonl" || ext == ".idx" {
			os.Remove(filepath.Join(snapDir, name))
		}
	}
}

// onDurable registers a fsync'd-but-unapplied sequence. It runs on the
// stripe log's writer goroutine, in sequence order — the order matters:
// a floor read between two registrations must always see every durable
// sequence that is not yet applied.
func (d *storeDurability) onDurable(stripe int, seq uint64) {
	st := &d.stripes[stripe]
	st.mu.Lock()
	st.maxDurable = seq
	st.pending[seq] = struct{}{}
	st.mu.Unlock()
}

// walChunkPosts caps the posts per WAL record: a stripe sub-batch
// larger than this splits into several records, so even a whole-corpus
// seed Add stays far below durable.MaxRecordBytes (recovery replays
// multiple records exactly like one).
const walChunkPosts = 4096

// errEncode marks a logParts failure that happened while encoding the
// batch, before it reached a log — a per-batch problem, not disk
// damage, so it must not flip the store into degraded mode.
var errEncode = errors.New("social: encode wal batch")

// logParts appends each stripe's sub-batch to its log, blocking until
// every one is fsync'd (each append group-commits with whatever other
// batches are in flight on that stripe). It returns the parts whose
// records are durable: on a mid-batch failure that is a strict prefix,
// and the caller must still commit that prefix — it is on disk and
// would resurface at the next recovery regardless. span (nil-safe)
// receives the cost attribution: records logged and the largest commit
// group any of them rode — how well group commit amortized the wait.
func (d *storeDurability) logParts(parts []*stripePart, span *obs.Span) (logged []*stripePart, err error) {
	records, maxGroup := 0, 0
	defer func() {
		span.SetInt("records", int64(records))
		span.SetInt("group_max", int64(maxGroup))
	}()
	for i, part := range parts {
		for lo := 0; lo < len(part.posts); lo += walChunkPosts {
			hi := lo + walChunkPosts
			if hi > len(part.posts) {
				hi = len(part.posts)
			}
			payload, err := json.Marshal(part.posts[lo:hi])
			if err != nil {
				err = fmt.Errorf("%w: %v", errEncode, err)
			} else {
				var res durable.AppendResult
				res, err = d.logs[part.stripe].AppendGroup(payload)
				if err == nil {
					part.seqs = append(part.seqs, res.Seq)
					records++
					if res.Group > maxGroup {
						maxGroup = res.Group
					}
					continue
				}
			}
			// A partially logged part counts as logged: some of its
			// chunks are durable. Truncate it to the durable posts so
			// the commit matches the disk exactly. The durable chunks
			// still count toward the compaction trigger.
			d.records.Add(int64(records))
			if len(part.seqs) > 0 {
				part.posts = part.posts[:lo]
				part.terms = part.terms[:lo]
				return parts[:i+1], err
			}
			return parts[:i], err
		}
	}
	if d.records.Add(int64(records)) >= d.compactRec && d.compactRec > 0 {
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
	return parts, nil
}

// markApplied clears a batch's sequences from the pending sets once the
// in-memory commit made them searchable, and counts them toward their
// stripes' dirty totals — applied records are exactly what the next
// compaction must fold into those stripes' snapshots. The dirty add
// comes after the commit, so a compaction that observed the count has
// also observed the committed data in the shard snapshot it dumps.
func (d *storeDurability) markApplied(parts []*stripePart) {
	for _, part := range parts {
		st := &d.stripes[part.stripe]
		st.mu.Lock()
		for _, seq := range part.seqs {
			delete(st.pending, seq)
		}
		st.mu.Unlock()
		st.dirty.Add(int64(len(part.seqs)))
	}
}

// anyDirty reports whether any stripe has records applied (or a
// force-dirty marker set) since its last snapshot.
func (d *storeDurability) anyDirty() bool {
	for i := range d.stripes {
		if d.stripes[i].dirty.Load() != 0 {
			return true
		}
	}
	return false
}

// floors returns, per stripe, the highest sequence with everything at
// or below it applied to the in-memory indices. Conservative by
// construction: an in-flight batch (durable, not yet committed) holds
// the floor below its sequence, so a snapshot taken now is a superset
// of every floor — replay after recovery deduplicates the overlap.
func (d *storeDurability) floors() DurableCursor {
	out := make(DurableCursor, len(d.stripes))
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		f := st.maxDurable
		for seq := range st.pending {
			if seq-1 < f {
				f = seq - 1
			}
		}
		st.mu.Unlock()
		out[i] = f
	}
	return out
}

// compactLoop is the background snapshot pass: every period (or early,
// once CompactRecords WAL appends accumulate) it dumps the live store
// and truncates the logs.
func (d *storeDurability) compactLoop(s *Store, every time.Duration) {
	defer close(d.done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
		case <-d.kick:
		}
		if !d.anyDirty() {
			continue // nothing applied since the last snapshot
		}
		// Errors are retried next tick (the dirty counters only drain
		// on success) and reported through Store.CompactionError.
		_ = d.compact(s)
	}
}

// compact takes one snapshot generation, rewriting only the dirty
// stripes — those with WAL records applied since their last snapshot:
// capture each stripe's dirty count and the floors, dump the dirty
// stripes' live generations lock-free (ingest keeps committing
// throughout), write their posts+index files, atomically publish the
// new manifest, then drop WAL segments wholly below the floors. Clean
// stripes carry their previous snapshot entry AND their previous floor
// verbatim — a record applied between the dirty capture and the floor
// read is missing from the carried-over snapshot, so advancing a clean
// stripe's floor could truncate an applied record out of the WAL
// before any snapshot holds it. With no dirty stripe at all, compact
// returns without writing a byte (the idle early-exit). A crash at any
// point leaves either the old manifest (plus orphan files cleaned at
// next open) or the new one — never a state that loses an acknowledged
// batch.
func (d *storeDurability) compact(s *Store) (err error) {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	defer func() { d.compactErr = err }()
	// Dirty counts first: a record applied after this capture stays
	// counted, keeping its stripe dirty for the next pass even though
	// this pass may already include its data.
	dirty := make([]int64, len(d.stripes))
	idle := true
	for i := range d.stripes {
		dirty[i] = d.stripes[i].dirty.Load()
		if dirty[i] != 0 {
			idle = false
		}
	}
	if idle {
		return nil
	}
	if m := s.met.Load(); m != nil {
		t0 := time.Now()
		defer func() {
			if err != nil {
				m.CompactionErrors.Inc()
				return
			}
			m.Compactions.Inc()
			m.CompactionLatency.ObserveSince(t0)
		}()
	}
	// Floors before the dump: everything at or below a floor is applied,
	// hence included in any snapshot taken afterwards.
	floors := d.floors()
	// The records counter is drained only after the manifest commits: a
	// failed compaction leaves it non-zero, so the record-count trigger
	// keeps retrying instead of concluding there is nothing to snapshot.
	drained := d.records.Load()
	gen := d.man.Gen + 1
	snapDir := filepath.Join(d.dir, snapDirName)
	stripes := make([]durable.StripeSnapshot, len(d.stripes))
	newFloors := make([]uint64, len(d.stripes))
	var written int64
	var compacted int64
	var newFiles []string
	fail := func(err error) error {
		for _, f := range newFiles {
			os.Remove(filepath.Join(snapDir, f))
		}
		return err
	}
	for i := range d.stripes {
		if dirty[i] == 0 {
			if d.man.Version >= 2 {
				stripes[i] = d.man.Stripes[i]
			}
			newFloors[i] = d.man.Floors[i]
			continue
		}
		newFloors[i] = floors[i]
		compacted++
		sn := s.shards[i].view()
		g := sn.base
		if len(sn.delta.byTime) > 0 {
			g = foldGens(sn.base, sn.delta, nil, nil)
		}
		if len(g.byTime) == 0 {
			continue // an empty stripe needs no files; its entry stays empty
		}
		postsName := fmt.Sprintf("stripe-%04d-%08d.jsonl", i, gen)
		indexName := fmt.Sprintf("stripe-%04d-%08d.idx", i, gen)
		n, err := writePostsFileCount(filepath.Join(snapDir, postsName), g.byTime)
		if err != nil {
			return fail(err)
		}
		written += n
		newFiles = append(newFiles, postsName)
		// The sidecar is strictly an optimization, so failing to encode
		// one (a timestamp outside the Unix-nano range, say) must not
		// wedge compaction — the stripe degrades to a posts-only entry
		// and the next open rebuilds it by re-tokenizing.
		n, err = writeStripeIndexFile(filepath.Join(snapDir, indexName), g)
		if err != nil {
			stripes[i] = durable.StripeSnapshot{Posts: postsName}
			continue
		}
		written += n
		newFiles = append(newFiles, indexName)
		stripes[i] = durable.StripeSnapshot{Posts: postsName, Index: indexName}
	}
	next := &durable.Manifest{
		Version: durable.ManifestVersion,
		Shards:  len(d.logs),
		Gen:     gen,
		Floors:  newFloors,
		Stripes: stripes,
	}
	if err := next.Write(d.dir); err != nil {
		return fail(err)
	}
	// Manifest committed: the files it replaced are garbage now.
	if old := d.man.Snapshot; old != "" {
		os.Remove(filepath.Join(snapDir, old))
	}
	for i, old := range d.man.Stripes {
		for _, f := range []string{old.Posts, old.Index} {
			if f != "" && f != stripes[i].Posts && f != stripes[i].Index {
				os.Remove(filepath.Join(snapDir, f))
			}
		}
	}
	d.man = next
	d.records.Add(-drained)
	for i := range d.stripes {
		if dirty[i] != 0 {
			d.stripes[i].dirty.Add(-dirty[i])
		}
	}
	d.compactedBytes.Add(written)
	d.compactedStripes.Add(compacted)
	if m := s.met.Load(); m != nil {
		m.CompactionBytes.Add(uint64(written))
		m.CompactedStripes.Add(uint64(compacted))
	}
	for i, log := range d.logs {
		if err := log.TruncateBefore(newFloors[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces a snapshot compaction of the dirty stripes now (and
// with it WAL truncation). When nothing was applied since the last
// snapshot it returns without writing anything. On an in-memory store
// it is a no-op.
func (s *Store) Flush() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.compact(s)
}

// Close stops the background compactor, takes a final snapshot, and
// closes the write-ahead logs; a store reopened after a clean Close
// recovers from the snapshot alone. Concurrent Adds racing a Close may
// fail with a closed-log error (and are then not inserted). On an
// in-memory store Close is a no-op. Idempotent.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	d := s.dur
	d.closeOnce.Do(func() {
		close(d.stop)
		if d.loop {
			<-d.done
		}
		d.closeErr = d.compact(s)
		for _, log := range d.logs {
			if err := log.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
	})
	return d.closeErr
}

// closeAbrupt is the crash-test hook: it releases the file handles
// without the final snapshot, leaving the directory exactly as a
// kill -9 would — snapshot from the last compaction plus a WAL tail.
func (s *Store) closeAbrupt() {
	d := s.dur
	d.closeOnce.Do(func() {
		close(d.stop)
		if d.loop {
			<-d.done
		}
		for _, log := range d.logs {
			log.Close()
		}
	})
}

// CompactionError returns the most recent snapshot-compaction failure,
// cleared by the next successful compaction — the health signal for a
// daemon whose WAL keeps growing because snapshots cannot be written.
// Nil on an in-memory store.
func (s *Store) CompactionError() error {
	if s.dur == nil {
		return nil
	}
	s.dur.cmu.Lock()
	defer s.dur.cmu.Unlock()
	return s.dur.compactErr
}

// DurableCursor returns the store's current WAL position (per-stripe
// floors): every post applied so far sits at or below it, and every
// post ingested later sits above it. Nil on an in-memory store.
func (s *Store) DurableCursor() DurableCursor {
	if s.dur == nil {
		return nil
	}
	return s.dur.floors()
}

// PostsSince returns the stored posts whose WAL records sit above the
// cursor, in (CreatedAt, ID) order — the delta a consumer that
// persisted the cursor has not seen. It fails when the cursor predates
// the WAL's truncation horizon (the consumer's state is too old to
// catch up incrementally) or when the store is not durable.
func (s *Store) PostsSince(c DurableCursor) ([]*Post, error) {
	if s.dur == nil {
		return nil, fmt.Errorf("social: store has no write-ahead log")
	}
	d := s.dur
	if len(c) != len(d.logs) {
		return nil, fmt.Errorf("social: cursor has %d stripes, store has %d", len(c), len(d.logs))
	}
	d.cmu.Lock() // exclude concurrent truncation
	defer d.cmu.Unlock()
	seen := make(map[string]bool)
	var out []*Post
	for i, log := range d.logs {
		if first := log.FirstSeq(); c[i]+1 < first {
			return nil, fmt.Errorf("social: cursor stripe %d at %d predates wal horizon %d", i, c[i], first)
		}
		err := log.Replay(c[i], func(_ uint64, payload []byte) error {
			var posts []*Post
			if err := json.Unmarshal(payload, &posts); err != nil {
				return fmt.Errorf("decode wal batch: %w", err)
			}
			for _, p := range posts {
				if p == nil || seen[p.ID] {
					continue
				}
				seen[p.ID] = true
				if live := s.Post(p.ID); live != nil {
					out = append(out, live)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("social: replay stripe %d: %w", i, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return postLess(out[i], out[j]) })
	return out, nil
}
