package social

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// dayPost builds a post on its own UTC day (= its own time bucket), so
// consecutive indices land on consecutive shards of a striped store.
func dayPost(i int) *Post {
	return &Post{
		ID:        fmt.Sprintf("day-%03d", i),
		Author:    "u",
		Text:      "daily #dpfdelete chatter on the excavator",
		CreatedAt: time.Date(2022, 1, 1, 9, 0, 0, 0, time.UTC).AddDate(0, 0, i),
		Region:    RegionEurope,
		Metrics:   Metrics{Views: 10 + i},
	}
}

func TestBucketOfFloorsPre1970(t *testing.T) {
	// Floor division: one nanosecond before an epoch-aligned bucket
	// boundary belongs to the previous bucket, on either side of 1970.
	boundary := time.Unix(0, 3*shardBucketNanos)
	if bucketOf(boundary) != 3 || bucketOf(boundary.Add(-time.Nanosecond)) != 2 {
		t.Errorf("post-1970 bucketing wrong: %d, %d", bucketOf(boundary), bucketOf(boundary.Add(-time.Nanosecond)))
	}
	neg := time.Unix(0, -3*shardBucketNanos)
	if bucketOf(neg) != -3 || bucketOf(neg.Add(-time.Nanosecond)) != -4 {
		t.Errorf("pre-1970 bucketing wrong: %d, %d", bucketOf(neg), bucketOf(neg.Add(-time.Nanosecond)))
	}
	// A pre-1970 post must be storable and searchable.
	s := NewStoreShards(4)
	old := &Post{ID: "old", Author: "u", Text: "vintage #dpfdelete", CreatedAt: time.Date(1969, 6, 1, 0, 0, 0, 0, time.UTC), Metrics: Metrics{Views: 1}}
	if err := s.Add(old); err != nil {
		t.Fatal(err)
	}
	page, err := s.Search(context.Background(), Query{})
	if err != nil || len(page.Posts) != 1 {
		t.Fatalf("pre-1970 post not found: %+v, %v", page, err)
	}
}

// TestCursorResumeAcrossShardBoundary drains a listing whose pages end
// on different shards at every step: posts sit one per day (one per
// bucket) on a 4-shard store, so a page of 3 always hands its keyset
// cursor to a different stripe than the one resuming the listing.
func TestCursorResumeAcrossShardBoundary(t *testing.T) {
	s := NewStoreShards(4)
	const n = 13
	for i := 0; i < n; i++ {
		if err := s.Add(dayPost(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	q := Query{MaxResults: 3}
	pages := 0
	for {
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if page.TotalMatches != n {
			t.Fatalf("TotalMatches = %d, want %d", page.TotalMatches, n)
		}
		got = append(got, ids(page.Posts)...)
		pages++
		if page.NextToken == "" {
			break
		}
		// The cursor names the last delivered post; the next page's
		// first post lives in a different time bucket, i.e. resuming
		// seeks inside a shard that did not emit the cursor.
		q.PageToken = page.NextToken
	}
	if pages != 5 {
		t.Errorf("drained in %d pages, want 5", pages)
	}
	if len(got) != n {
		t.Fatalf("drained %d posts, want %d", len(got), n)
	}
	for i, id := range got {
		if want := fmt.Sprintf("day-%03d", i); id != want {
			t.Errorf("post %d = %s, want %s", i, id, want)
		}
	}
	// Resuming from a hand-built cursor between two buckets lands on
	// the first post of the following bucket.
	mid := CursorOf(s.Post("day-005"))
	page, err := s.Search(context.Background(), Query{MaxResults: 2, PageToken: EncodeCursor(mid)})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(page.Posts); len(got) != 2 || got[0] != "day-006" || got[1] != "day-007" {
		t.Errorf("mid-bucket resume = %v, want [day-006 day-007]", got)
	}
}

// renderListing drains a query page by page and renders every page —
// posts, continuation token and total — as one JSON document.
func renderListing(t *testing.T, s Searcher, q Query) []byte {
	t.Helper()
	var pages []*Page
	for i := 0; ; i++ {
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("page %d of %+v: %v", i, q, err)
		}
		pages = append(pages, page)
		if page.NextToken == "" {
			break
		}
		q.PageToken = page.NextToken
	}
	out, err := json.Marshal(pages)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSearchShardCountEquivalence pins the sharded store to the
// single-stripe baseline: for every query shape, the full page-by-page
// listing — posts, keyset tokens and TotalMatches — must be
// byte-identical at 1, 4 and 16 shards.
func TestSearchShardCountEquivalence(t *testing.T) {
	posts, err := Generate(DefaultCorpusSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{MaxResults: 7},
		{MaxResults: 7, Since: ts(2021, 6, 1), Until: ts(2022, 6, 1)},
		{MaxResults: 7, Region: RegionEurope},
		{AnyTags: []string{"dpfdelete", "chiptuning"}, MaxResults: 5},
		{AnyTags: []string{"dpfdelete", "egrremoval"}, MustTerms: []string{"excavator"}, MaxResults: 3},
		{MustTerms: []string{"excavator", "limp"}, MaxResults: 2},
		{MustTerms: []string{"obd"}, Region: RegionNorthAmerica, Since: ts(2022, 1, 1), MaxResults: 4},
		{AnyTags: []string{"gpsblocker"}, Until: ts(2023, 1, 1), MaxResults: 6},
	}
	var baseline [][]byte
	for _, shards := range []int{1, 4, 16} {
		s := NewStoreShards(shards)
		if err := s.Add(posts...); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			got := renderListing(t, s, q)
			if shards == 1 {
				baseline = append(baseline, got)
				continue
			}
			if string(got) != string(baseline[qi]) {
				t.Errorf("query %d: %d-shard listing differs from single-shard baseline\n1:  %.200s\n%d: %.200s",
					qi, shards, baseline[qi], shards, got)
			}
		}
	}
	// Guard against a vacuously green pass.
	if len(baseline) == 0 || string(baseline[0]) == "[]" {
		t.Fatal("baseline listings empty; equivalence test is vacuous")
	}
}

// TestWatchExactlyOnceAcrossShards floods a striped store from writers
// that each target a different time bucket (= a different stripe), with
// one subscriber replaying from the zero cursor and a second attaching
// mid-flood: every post must reach the first subscriber exactly once,
// and the late subscriber's replay snapshot must not overlap its live
// stream. Run with -race.
func TestWatchExactlyOnceAcrossShards(t *testing.T) {
	s := NewStoreShards(8)
	for i := 0; i < 40; i++ {
		if err := s.Add(dayPost(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	zero := Cursor{}
	feed := s.Watch(ctx, WatchOptions{After: &zero, Buffer: 2})

	const writers, perWriter = 8, 60
	var wg sync.WaitGroup
	lateFeeds := make(chan (<-chan []*Post), 1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Writer w stays inside day-bucket w (mod stripe count):
				// concurrent Adds always land on distinct shards.
				p := &Post{
					ID:        fmt.Sprintf("w%d-%03d", w, i),
					Author:    fmt.Sprintf("writer%d", w),
					Text:      "flood #dpfdelete",
					CreatedAt: time.Date(2023, 5, 1+w, i/60, i%60, 0, 0, time.UTC),
					Metrics:   Metrics{Views: 1},
				}
				if err := s.Add(p); err != nil {
					t.Error(err)
					return
				}
				if w == 0 && i == perWriter/2 {
					lateFeeds <- s.Watch(ctx, WatchOptions{After: &zero, Buffer: 2})
				}
			}
		}(w)
	}
	late := <-lateFeeds
	wg.Wait()

	want := 40 + writers*perWriter
	for name, f := range map[string]<-chan []*Post{"registered-first": feed, "registered-mid-flood": late} {
		got := collectFeed(t, f, want)
		seen := make(map[string]bool, len(got))
		for _, id := range got {
			if seen[id] {
				t.Fatalf("%s subscriber: post %s delivered twice", name, id)
			}
			seen[id] = true
		}
		if len(seen) != want {
			t.Errorf("%s subscriber: %d distinct posts, want %d", name, len(seen), want)
		}
	}
}

// TestWatchMultiShardBatchAtomic pins the sequencer contract: one Add
// whose posts span several stripes arrives at the changefeed as one
// batch, in (CreatedAt, ID) order.
func TestWatchMultiShardBatchAtomic(t *testing.T) {
	s := NewStoreShards(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	feed := s.Watch(ctx, WatchOptions{})

	batch := make([]*Post, 6)
	for i := range batch {
		batch[i] = dayPost(i)
	}
	// Hand the batch over shuffled; delivery re-sorts it.
	if err := s.Add(batch[3], batch[0], batch[5], batch[1], batch[4], batch[2]); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-feed:
		if len(got) != len(batch) {
			t.Fatalf("batch split across deliveries: got %d posts, want %d", len(got), len(batch))
		}
		for i, p := range got {
			if want := fmt.Sprintf("day-%03d", i); p.ID != want {
				t.Errorf("batch[%d] = %s, want %s", i, p.ID, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multi-shard batch never delivered")
	}
}

// TestStoreShardsAccessor covers the stripe-count plumbing the daemons'
// -shards flag relies on.
func TestStoreShardsAccessor(t *testing.T) {
	if got := NewStore().Shards(); got != DefaultShards {
		t.Errorf("NewStore().Shards() = %d, want %d", got, DefaultShards)
	}
	if got := NewStoreShards(3).Shards(); got != 3 {
		t.Errorf("NewStoreShards(3).Shards() = %d, want 3", got)
	}
	if got := NewStoreShards(-1).Shards(); got != DefaultShards {
		t.Errorf("NewStoreShards(-1).Shards() = %d, want %d", got, DefaultShards)
	}
}
