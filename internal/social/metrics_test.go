package social

import (
	"context"
	"testing"

	"github.com/psp-framework/psp/internal/obs"
)

// TestStoreMetricsRecording: adds, searches, shard visits and
// changefeed publication land in the attached surface; Stats mirrors
// them as a typed snapshot.
func TestStoreMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewStoreMetrics(reg)
	s := NewStoreShards(4)
	s.SetMetrics(m)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	feed := s.Watch(ctx, WatchOptions{})

	for i := 0; i < 10; i++ {
		if err := s.Add(durPost(i, i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(durPost(0, 0)); err == nil {
		t.Fatal("duplicate add must fail")
	}
	if got := m.Adds.Value(); got != 11 {
		t.Fatalf("adds = %d, want 11", got)
	}
	if got := m.AddedPosts.Value(); got != 10 {
		t.Fatalf("added posts = %d, want 10", got)
	}
	if got := m.AddErrors.Value(); got != 1 {
		t.Fatalf("add errors = %d, want 1", got)
	}
	if got := m.AddLatency.Count(); got != 11 {
		t.Fatalf("add latency count = %d, want 11", got)
	}

	if _, err := s.Search(ctx, Query{MaxResults: 5}); err != nil {
		t.Fatal(err)
	}
	if got := m.Searches.Value(); got != 1 {
		t.Fatalf("searches = %d, want 1", got)
	}
	if got := m.SearchLatency.Count(); got != 1 {
		t.Fatalf("search latency count = %d, want 1", got)
	}
	// An unwindowed query visits every stripe.
	if got := m.ShardVisits.Value(); got != 4 {
		t.Fatalf("shard visits = %d, want 4", got)
	}

	if got := m.FeedPosts.Value(); got != 10 {
		t.Fatalf("feed posts = %d, want 10", got)
	}
	if m.FeedBatches.Value() == 0 {
		t.Fatal("no feed batches recorded")
	}

	st := s.Stats()
	if st.Posts != 10 || st.Shards != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ChangefeedSubscribers != 1 {
		t.Fatalf("subscribers = %d, want 1", st.ChangefeedSubscribers)
	}
	if st.Durable {
		t.Fatal("in-memory store reported durable")
	}
	// Stats activates the observer-gated visit counter; a second search
	// then shows up in the next snapshot.
	if _, err := s.Search(ctx, Query{MaxResults: 5}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SearchShardVisits - st.SearchShardVisits; got != 4 {
		t.Fatalf("visit delta = %d, want 4", got)
	}

	// The gauge callbacks registered by SetMetrics read live state.
	var b safeWriter
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"psp_store_posts 10",
		"psp_store_changefeed_subscribers 1",
	} {
		if !containsSample(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
	_ = feed
}

// TestDurableStoreMetrics: recovery gauges, WAL counters and
// compaction counters flow through DurableOptions.Metrics.
func TestDurableStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m := NewStoreMetrics(reg)
	opts := noCompact(2)
	opts.Metrics = m
	s, err := OpenStoreDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Add(durPost(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.WAL.Appends.Value(); got == 0 {
		t.Fatal("no WAL appends recorded")
	}
	if m.WAL.Fsyncs.Value() == 0 {
		t.Fatal("no WAL fsyncs recorded")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.Compactions.Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	st := s.Stats()
	if !st.Durable || len(st.WALFloors) != 2 {
		t.Fatalf("durable stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh surface: recovery duration and post count land
	// in the gauges.
	reg2 := obs.NewRegistry()
	m2 := NewStoreMetrics(reg2)
	opts2 := noCompact(0)
	opts2.Metrics = m2
	re, err := OpenStoreDir(dir, opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := m2.RecoveredPosts.Value(); got != 6 {
		t.Fatalf("recovered posts gauge = %v, want 6", got)
	}
	if m2.RecoverySeconds.Value() <= 0 {
		t.Fatal("recovery duration gauge not set")
	}
}

// safeWriter mirrors the obs test helper locally.
type safeWriter struct{ buf []byte }

func (w *safeWriter) Write(p []byte) (int, error) { w.buf = append(w.buf, p...); return len(p), nil }
func (w *safeWriter) String() string              { return string(w.buf) }

func containsSample(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}
