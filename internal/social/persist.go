package social

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/psp-framework/psp/internal/durable"
)

// Corpus snapshots persist as JSON Lines: one post per line. The format
// is stable (Post carries explicit JSON tags) so snapshots survive
// refactoring.

// WritePosts streams posts to w as JSON Lines.
func WritePosts(w io.Writer, posts []*Post) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, p := range posts {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("social: write post %d: %w", i, err)
		}
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("social: encode post %s: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadPosts parses a JSON Lines stream back into posts, validating each.
func ReadPosts(r io.Reader) ([]*Post, error) {
	var posts []*Post
	dec := json.NewDecoder(r)
	for {
		var p Post
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				return posts, nil
			}
			return nil, fmt.Errorf("social: decode post %d: %w", len(posts), err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("social: read post %d: %w", len(posts), err)
		}
		posts = append(posts, &p)
	}
}

// SnapshotPosts returns every stored post in (CreatedAt, ID) order from
// the stripes' published snapshots. Like Search it is lock-free and
// never blocks writers, so a periodic persistence pass can dump a live
// store without stalling ingest — and like Search it is per-stripe
// consistent, not store-wide: a concurrent multi-stripe Add may appear
// with only its earlier stripes' posts included, exactly as if the
// batch had been split into per-stripe Adds. The returned slice is
// owned by the caller; the posts it points at are shared and must not
// be mutated.
func (s *Store) SnapshotPosts() []*Post {
	var lists [][]*Post
	for _, sh := range s.shards {
		lists = sh.view().genLists(lists, func(g *shardGen) []*Post { return g.byTime })
	}
	return mergeOwned(lists)
}

// WriteStore streams the store's current contents to w as JSON Lines —
// the snapshot counterpart of LoadStore. The dump is taken lock-free
// via SnapshotPosts, so writers keep committing while it runs.
func WriteStore(w io.Writer, s *Store) error {
	return WritePosts(w, s.SnapshotPosts())
}

// WritePostsFile dumps posts to path as JSON Lines, atomically: the
// dump goes to a temporary file in the same directory, is fsync'd, and
// renamed into place. A crash mid-dump can therefore never leave a
// truncated file for LoadStoreShards to half-parse — path either still
// holds its previous content or the complete new snapshot. The durable
// store's snapshot compaction and the daemons' -dump/-corpus outputs
// write through this.
func WritePostsFile(path string, posts []*Post) error {
	return durable.WriteFileAtomic(path, func(w io.Writer) error {
		return WritePosts(w, posts)
	})
}

// countingWriter sums the bytes written through it — how snapshot
// compaction reports its I/O volume without a second stat pass.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writePostsFileCount is WritePostsFile reporting the bytes written.
func writePostsFileCount(path string, posts []*Post) (int64, error) {
	var n int64
	err := durable.WriteFileAtomic(path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := WritePosts(cw, posts); err != nil {
			return err
		}
		n = cw.n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// readPostsFile loads one snapshot file's posts.
func readPostsFile(path string) ([]*Post, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("social: open snapshot: %w", err)
	}
	defer f.Close()
	posts, err := ReadPosts(f)
	if err != nil {
		return nil, fmt.Errorf("social: snapshot %s: %w", path, err)
	}
	return posts, nil
}

// WriteStoreFile atomically dumps the store's current contents to path
// as JSON Lines — WriteStore with the crash-safety of WritePostsFile.
// The dump is taken lock-free via SnapshotPosts, so writers keep
// committing while it runs.
func WriteStoreFile(path string, s *Store) error {
	return WritePostsFile(path, s.SnapshotPosts())
}

// LoadStore reads a JSON Lines snapshot into a fresh store.
func LoadStore(r io.Reader) (*Store, error) {
	return LoadStoreShards(r, 0)
}

// LoadStoreShards is LoadStore with an explicit shard count (see
// NewStoreShards).
func LoadStoreShards(r io.Reader, shards int) (*Store, error) {
	posts, err := ReadPosts(r)
	if err != nil {
		return nil, err
	}
	s := NewStoreShards(shards)
	if err := s.Add(posts...); err != nil {
		return nil, err
	}
	return s, nil
}
