package social

import (
	"context"

	"github.com/psp-framework/psp/internal/fault"
)

// WithFault wraps a Searcher so every Search consults the injector
// first: injected latency delays the call (cancellable through ctx) and
// an injected error replaces it — the backend looks exactly like a
// flaky platform to Multi federation, the monitor loop, or anything
// else holding the Searcher. A nil injector returns the searcher
// unwrapped.
func WithFault(s Searcher, inj *fault.Injector) Searcher {
	if inj == nil {
		return s
	}
	return &faultSearcher{base: s, inj: inj}
}

type faultSearcher struct {
	base Searcher
	inj  *fault.Injector
}

func (f *faultSearcher) Search(ctx context.Context, q Query) (*Page, error) {
	if err := f.inj.Do(ctx); err != nil {
		return nil, err
	}
	return f.base.Search(ctx, q)
}
