package lifecycle

import (
	"errors"
	"testing"
)

func TestFullLifecycleReprocessingCount(t *testing.T) {
	var fired []Phase
	lc := New(func(p Phase, reason string) error {
		fired = append(fired, p)
		return nil
	})
	if lc.Current() != PhaseItemDefinition {
		t.Fatalf("initial phase = %s", lc.Current())
	}
	if err := lc.RunToProduction(); err != nil {
		t.Fatal(err)
	}
	if lc.Current() != PhaseProductionReadiness {
		t.Errorf("final phase = %s", lc.Current())
	}
	// Fig. 2 marks six reprocessing points along the V.
	if len(fired) != 6 {
		t.Errorf("reprocessing fired %d times, want 6: %v", len(fired), fired)
	}
	if lc.ReprocessingCount() != 6 {
		t.Errorf("ReprocessingCount() = %d, want 6", lc.ReprocessingCount())
	}
	want := []Phase{
		PhaseGoalsAndConcepts, PhaseIntegrationVerification, PhaseFunctionalTesting,
		PhaseFuzzTesting, PhasePenTesting, PhaseProductionReadiness,
	}
	for i, p := range want {
		if i >= len(fired) || fired[i] != p {
			t.Errorf("reprocessing[%d] = %v, want %s", i, fired, p)
			break
		}
	}
	// Advancing past the end fails.
	if err := lc.Advance(); err == nil {
		t.Error("advance past production readiness succeeded")
	}
}

func TestDesignPhasesDoNotReprocess(t *testing.T) {
	for _, p := range []Phase{PhaseItemDefinition, PhaseDesign, PhaseImplementation} {
		if p.TriggersReprocessing() {
			t.Errorf("%s should not trigger reprocessing", p)
		}
	}
}

func TestFieldVulnerabilityForcesReprocessing(t *testing.T) {
	count := 0
	lc := New(func(p Phase, reason string) error {
		count++
		return nil
	})
	if err := lc.RunToProduction(); err != nil {
		t.Fatal(err)
	}
	before := count
	if err := lc.FieldVulnerability("CAN DoS observed in fleet telemetry"); err != nil {
		t.Fatal(err)
	}
	if count != before+1 {
		t.Errorf("field vulnerability did not fire reprocessing")
	}
	events := lc.Events()
	last := events[len(events)-1]
	if last.Kind != "tara-reprocessing" || last.Phase != PhaseProductionReadiness {
		t.Errorf("last event = %+v", last)
	}
}

func TestReprocessErrorAbortsTransition(t *testing.T) {
	boom := errors.New("model regeneration failed")
	lc := New(func(p Phase, reason string) error { return boom })
	if err := lc.Advance(); !errors.Is(err, boom) {
		t.Fatalf("Advance error = %v, want wrapped boom", err)
	}
	// The failed transition must not change the phase.
	if lc.Current() != PhaseItemDefinition {
		t.Errorf("phase advanced despite reprocessing failure: %s", lc.Current())
	}
}

func TestEventsAreOrderedAndCopied(t *testing.T) {
	lc := New(nil)
	_ = lc.Advance()
	_ = lc.Advance()
	events := lc.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Sequence <= events[i-1].Sequence {
			t.Fatal("events not strictly ordered")
		}
	}
	// Mutating the copy must not corrupt the lifecycle.
	if len(events) > 0 {
		events[0].Note = "tampered"
		if lc.Events()[0].Note == "tampered" {
			t.Error("Events() exposed internal state")
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseItemDefinition.String() != "Item Definition" {
		t.Errorf("PhaseItemDefinition = %q", PhaseItemDefinition.String())
	}
	if Phase(99).String() != "Phase(99)" {
		t.Errorf("unknown phase = %q", Phase(99).String())
	}
	if !PhasePenTesting.Valid() || Phase(0).Valid() {
		t.Error("Valid() wrong")
	}
	if len(AllPhases()) != 9 {
		t.Errorf("AllPhases() = %d, want 9", len(AllPhases()))
	}
}
