// Package lifecycle models the ISO/SAE 21434 development life cycle of
// Fig. 2: the V-model phases from item definition to production
// readiness, with TARA reprocessing triggered at each phase transition
// and on field events (vulnerability discoveries). The PSP framework
// hooks its dynamic weight regeneration into these reprocessing points.
package lifecycle

import (
	"fmt"
	"sort"
	"sync"
)

// Phase is a development phase of the Fig. 2 V-model.
type Phase int

// Development phases, in lifecycle order. Each maps to the ISO/SAE 21434
// clause noted in the figure.
const (
	PhaseItemDefinition          Phase = iota + 1 // Clause 9.3
	PhaseGoalsAndConcepts                         // Clauses 9.4–9.5
	PhaseDesign                                   // Clause 10
	PhaseImplementation                           // Clause 10
	PhaseIntegrationVerification                  // Clause 10
	PhaseFunctionalTesting                        // Clause 11 (functional testing & vulnerability scanning)
	PhaseFuzzTesting                              // Clause 11
	PhasePenTesting                               // Clause 11
	PhaseProductionReadiness
)

var phaseNames = map[Phase]string{
	PhaseItemDefinition:          "Item Definition",
	PhaseGoalsAndConcepts:        "Goals & Concepts",
	PhaseDesign:                  "Design",
	PhaseImplementation:          "Implementation",
	PhaseIntegrationVerification: "Integration & Verification",
	PhaseFunctionalTesting:       "Functional Testing & Vulnerability Scanning",
	PhaseFuzzTesting:             "Fuzz Testing",
	PhasePenTesting:              "Pen Testing",
	PhaseProductionReadiness:     "Production Readiness",
}

// String returns the phase name used in Fig. 2.
func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Valid reports whether p is a defined phase.
func (p Phase) Valid() bool {
	return p >= PhaseItemDefinition && p <= PhaseProductionReadiness
}

// AllPhases returns the phases in lifecycle order.
func AllPhases() []Phase {
	out := make([]Phase, 0, int(PhaseProductionReadiness))
	for p := PhaseItemDefinition; p <= PhaseProductionReadiness; p++ {
		out = append(out, p)
	}
	return out
}

// reprocessingPhases are the transitions Fig. 2 marks with
// "TARA REPROCESSING": entering any verification/testing phase and
// production readiness re-runs the TARA.
var reprocessingPhases = map[Phase]bool{
	PhaseGoalsAndConcepts:        true,
	PhaseIntegrationVerification: true,
	PhaseFunctionalTesting:       true,
	PhaseFuzzTesting:             true,
	PhasePenTesting:              true,
	PhaseProductionReadiness:     true,
}

// TriggersReprocessing reports whether entering the phase re-runs TARA.
func (p Phase) TriggersReprocessing() bool { return reprocessingPhases[p] }

// Event is a recorded lifecycle event.
type Event struct {
	// Sequence is a monotonically increasing event number.
	Sequence int
	// Phase is the phase in effect when the event fired.
	Phase Phase
	// Kind distinguishes "advance", "tara-reprocessing" and
	// "field-vulnerability".
	Kind string
	// Note carries free-text detail.
	Note string
}

// ReprocessFunc is the callback invoked whenever TARA reprocessing
// triggers; the PSP framework installs its weight-regeneration pipeline
// here. Returning an error aborts the transition.
type ReprocessFunc func(p Phase, reason string) error

// Lifecycle is the phase machine. It is safe for concurrent use.
type Lifecycle struct {
	mu        sync.Mutex
	current   Phase
	events    []Event
	seq       int
	reprocess ReprocessFunc
}

// New returns a lifecycle at the item-definition phase. reprocess may be
// nil for a pure recording machine.
func New(reprocess ReprocessFunc) *Lifecycle {
	return &Lifecycle{current: PhaseItemDefinition, reprocess: reprocess}
}

// Current returns the phase in effect.
func (lc *Lifecycle) Current() Phase {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.current
}

// Advance moves to the next phase in order, firing TARA reprocessing when
// the entered phase requires it. Advancing past production readiness is
// an error.
func (lc *Lifecycle) Advance() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.current >= PhaseProductionReadiness {
		return fmt.Errorf("lifecycle: already at %s", lc.current)
	}
	next := lc.current + 1
	if next.TriggersReprocessing() {
		if err := lc.fireLocked(next, "phase entry"); err != nil {
			return err
		}
	}
	lc.current = next
	lc.record("advance", fmt.Sprintf("entered %s", next))
	return nil
}

// FieldVulnerability records a vulnerability detected in the field and
// forces TARA reprocessing regardless of the current phase — the
// "TARA is typically called upon during production phases when a
// vulnerability is detected in the field" path of the paper.
func (lc *Lifecycle) FieldVulnerability(desc string) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.record("field-vulnerability", desc)
	return lc.fireLocked(lc.current, "field vulnerability: "+desc)
}

// fireLocked invokes the reprocessing callback and records the event.
func (lc *Lifecycle) fireLocked(p Phase, reason string) error {
	if lc.reprocess != nil {
		if err := lc.reprocess(p, reason); err != nil {
			return fmt.Errorf("lifecycle: TARA reprocessing at %s: %w", p, err)
		}
	}
	lc.record("tara-reprocessing", reason)
	return nil
}

func (lc *Lifecycle) record(kind, note string) {
	lc.seq++
	lc.events = append(lc.events, Event{
		Sequence: lc.seq, Phase: lc.current, Kind: kind, Note: note,
	})
}

// Events returns a copy of the recorded events in sequence order.
func (lc *Lifecycle) Events() []Event {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]Event, len(lc.events))
	copy(out, lc.events)
	sort.Slice(out, func(i, j int) bool { return out[i].Sequence < out[j].Sequence })
	return out
}

// ReprocessingCount returns how many TARA reprocessing events fired.
func (lc *Lifecycle) ReprocessingCount() int {
	n := 0
	for _, e := range lc.Events() {
		if e.Kind == "tara-reprocessing" {
			n++
		}
	}
	return n
}

// RunToProduction advances through the full lifecycle from the current
// phase to production readiness.
func (lc *Lifecycle) RunToProduction() error {
	for lc.Current() < PhaseProductionReadiness {
		if err := lc.Advance(); err != nil {
			return err
		}
	}
	return nil
}
