package tara

import (
	"fmt"
	"strings"
)

// SecurityProperty is a cybersecurity property of an asset whose
// compromise leads to a damage scenario (ISO/SAE 21434 §15.3).
type SecurityProperty int

// Security properties. The first three are the classic CIA triad; the
// standard's examples extend them with authenticity, authorization and
// non-repudiation.
const (
	PropertyConfidentiality SecurityProperty = iota + 1
	PropertyIntegrity
	PropertyAvailability
	PropertyAuthenticity
	PropertyAuthorization
	PropertyNonRepudiation
)

var propertyNames = map[SecurityProperty]string{
	PropertyConfidentiality: "Confidentiality",
	PropertyIntegrity:       "Integrity",
	PropertyAvailability:    "Availability",
	PropertyAuthenticity:    "Authenticity",
	PropertyAuthorization:   "Authorization",
	PropertyNonRepudiation:  "Non-repudiation",
}

// String returns the property name.
func (p SecurityProperty) String() string {
	if s, ok := propertyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("SecurityProperty(%d)", int(p))
}

// Valid reports whether p is a defined security property.
func (p SecurityProperty) Valid() bool {
	return p >= PropertyConfidentiality && p <= PropertyNonRepudiation
}

// Asset is an item element with one or more cybersecurity properties
// worth protecting (firmware, calibration maps, CAN messages, keys, ...).
type Asset struct {
	// ID is a stable identifier unique within an Item (e.g. "ECM-FW").
	ID string
	// Name is the human-readable asset name.
	Name string
	// Description explains what the asset is and where it lives.
	Description string
	// Properties are the cybersecurity properties of the asset whose
	// compromise is damaging.
	Properties []SecurityProperty
	// ECU optionally names the vehicle ECU hosting the asset, matching
	// the vehicle topology model.
	ECU string
}

// Validate checks that the asset carries an ID, a name and at least one
// valid security property.
func (a *Asset) Validate() error {
	if strings.TrimSpace(a.ID) == "" {
		return fmt.Errorf("tara: asset %q: empty ID", a.Name)
	}
	if strings.TrimSpace(a.Name) == "" {
		return fmt.Errorf("tara: asset %s: empty name", a.ID)
	}
	if len(a.Properties) == 0 {
		return fmt.Errorf("tara: asset %s: no cybersecurity properties", a.ID)
	}
	for _, p := range a.Properties {
		if !p.Valid() {
			return fmt.Errorf("tara: asset %s: invalid security property %d", a.ID, int(p))
		}
	}
	return nil
}

// HasProperty reports whether the asset lists property p.
func (a *Asset) HasProperty(p SecurityProperty) bool {
	for _, q := range a.Properties {
		if q == p {
			return true
		}
	}
	return false
}

// Item is the subject of an ISO/SAE 21434 item definition (§9.3): a
// component or set of components implementing a vehicle-level function,
// together with the assets identified on it.
type Item struct {
	// Name identifies the item (e.g. "Engine Control Module").
	Name string
	// Description summarizes the item boundary and function.
	Description string
	// Assets are the assets identified on the item.
	Assets []*Asset
}

// Validate checks the item and all of its assets, including asset ID
// uniqueness.
func (it *Item) Validate() error {
	if strings.TrimSpace(it.Name) == "" {
		return fmt.Errorf("tara: item with empty name")
	}
	if len(it.Assets) == 0 {
		return fmt.Errorf("tara: item %s: no assets identified", it.Name)
	}
	seen := make(map[string]bool, len(it.Assets))
	for _, a := range it.Assets {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("item %s: %w", it.Name, err)
		}
		if seen[a.ID] {
			return fmt.Errorf("tara: item %s: duplicate asset ID %s", it.Name, a.ID)
		}
		seen[a.ID] = true
	}
	return nil
}

// Asset returns the asset with the given ID, or nil if absent.
func (it *Item) Asset(id string) *Asset {
	for _, a := range it.Assets {
		if a.ID == id {
			return a
		}
	}
	return nil
}
