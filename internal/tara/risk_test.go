package tara

import (
	"testing"
	"testing/quick"
)

func TestStandardRiskMatrixCells(t *testing.T) {
	m := StandardRiskMatrix()
	tests := []struct {
		impact ImpactRating
		feas   FeasibilityRating
		want   RiskValue
	}{
		{ImpactSevere, FeasibilityHigh, 5},
		{ImpactSevere, FeasibilityVeryLow, 2},
		{ImpactMajor, FeasibilityHigh, 4},
		{ImpactMajor, FeasibilityVeryLow, 1},
		{ImpactModerate, FeasibilityMedium, 2},
		{ImpactNegligible, FeasibilityHigh, 1},
		{ImpactNegligible, FeasibilityVeryLow, 1},
	}
	for _, tt := range tests {
		got, err := m.Risk(tt.impact, tt.feas)
		if err != nil {
			t.Fatalf("Risk(%s, %s): %v", tt.impact, tt.feas, err)
		}
		if got != tt.want {
			t.Errorf("Risk(%s, %s) = %s, want R%d", tt.impact, tt.feas, got, int(tt.want))
		}
	}
}

func TestRiskRejectsInvalidInputs(t *testing.T) {
	m := StandardRiskMatrix()
	if _, err := m.Risk(ImpactRating(0), FeasibilityHigh); err == nil {
		t.Error("Risk with invalid impact succeeded, want error")
	}
	if _, err := m.Risk(ImpactSevere, FeasibilityRating(0)); err == nil {
		t.Error("Risk with invalid feasibility succeeded, want error")
	}
}

func TestNewRiskMatrixMonotonicity(t *testing.T) {
	mk := func(mutate func(map[ImpactRating]map[FeasibilityRating]RiskValue)) error {
		cells := map[ImpactRating]map[FeasibilityRating]RiskValue{
			ImpactSevere:     {FeasibilityVeryLow: 2, FeasibilityLow: 3, FeasibilityMedium: 4, FeasibilityHigh: 5},
			ImpactMajor:      {FeasibilityVeryLow: 1, FeasibilityLow: 2, FeasibilityMedium: 3, FeasibilityHigh: 4},
			ImpactModerate:   {FeasibilityVeryLow: 1, FeasibilityLow: 2, FeasibilityMedium: 2, FeasibilityHigh: 3},
			ImpactNegligible: {FeasibilityVeryLow: 1, FeasibilityLow: 1, FeasibilityMedium: 1, FeasibilityHigh: 1},
		}
		if mutate != nil {
			mutate(cells)
		}
		_, err := NewRiskMatrix("custom", cells)
		return err
	}
	if err := mk(nil); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	// Risk decreasing along feasibility must be rejected.
	err := mk(func(c map[ImpactRating]map[FeasibilityRating]RiskValue) {
		c[ImpactSevere][FeasibilityHigh] = 1
	})
	if err == nil {
		t.Error("matrix decreasing along feasibility accepted, want error")
	}
	// Risk decreasing along impact must be rejected.
	err = mk(func(c map[ImpactRating]map[FeasibilityRating]RiskValue) {
		c[ImpactSevere][FeasibilityVeryLow] = 1
		c[ImpactMajor][FeasibilityVeryLow] = 2
	})
	if err == nil {
		t.Error("matrix decreasing along impact accepted, want error")
	}
	// Missing cell must be rejected.
	err = mk(func(c map[ImpactRating]map[FeasibilityRating]RiskValue) {
		delete(c[ImpactModerate], FeasibilityLow)
	})
	if err == nil {
		t.Error("matrix with missing cell accepted, want error")
	}
	// Out-of-range value must be rejected.
	err = mk(func(c map[ImpactRating]map[FeasibilityRating]RiskValue) {
		c[ImpactSevere][FeasibilityHigh] = 6
	})
	if err == nil {
		t.Error("matrix with risk value 6 accepted, want error")
	}
}

func TestSuggestTreatment(t *testing.T) {
	tests := []struct {
		risk RiskValue
		want TreatmentOption
	}{
		{1, TreatmentRetain},
		{2, TreatmentReduce},
		{3, TreatmentReduce},
		{4, TreatmentShare},
		{5, TreatmentAvoid},
	}
	for _, tt := range tests {
		got, err := SuggestTreatment(tt.risk)
		if err != nil {
			t.Fatalf("SuggestTreatment(%d): %v", int(tt.risk), err)
		}
		if got != tt.want {
			t.Errorf("SuggestTreatment(%d) = %v, want %v", int(tt.risk), got, tt.want)
		}
	}
	if _, err := SuggestTreatment(0); err == nil {
		t.Error("SuggestTreatment(0) succeeded, want error")
	}
	if _, err := SuggestTreatment(6); err == nil {
		t.Error("SuggestTreatment(6) succeeded, want error")
	}
}

// Property: for every valid (impact, feasibility) pair the standard matrix
// yields a valid risk value, and the value is monotone in both inputs.
func TestStandardMatrixMonotoneProperty(t *testing.T) {
	m := StandardRiskMatrix()
	f := func(i1, f1, i2, f2 uint8) bool {
		imp1 := ImpactNegligible + ImpactRating(i1%4)
		fe1 := FeasibilityVeryLow + FeasibilityRating(f1%4)
		imp2 := ImpactNegligible + ImpactRating(i2%4)
		fe2 := FeasibilityVeryLow + FeasibilityRating(f2%4)
		r1, err := m.Risk(imp1, fe1)
		if err != nil || !r1.Valid() {
			return false
		}
		r2, err := m.Risk(imp2, fe2)
		if err != nil || !r2.Valid() {
			return false
		}
		if imp1 <= imp2 && fe1 <= fe2 && r1 > r2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
