package tara

import (
	"fmt"
)

// This file is the incremental mutation API of an Analysis. Every method
// validates eagerly — the entity itself and its outbound references on
// upsert, the absence of inbound references on removal — so the analysis
// stays valid after every successful call; on error nothing changes.
// Each mutation maintains the engine index and marks exactly the
// affected threats dirty, so the next run re-rates only those.

// ensureTracker returns current engine state, building it (and thereby
// fully validating the analysis) if absent or stale.
func (a *Analysis) ensureTracker() (*tracker, error) {
	if tr := a.track; tr != nil && tr.structureMatches(a) {
		return tr, nil
	}
	idx, err := buildIndex(a)
	if err != nil {
		a.track = nil
		return nil, err
	}
	a.track = newTracker(a, idx, a.track)
	return a.track, nil
}

// UpsertAsset adds or replaces an asset of the item. Threats referencing
// the asset — directly or through a damage scenario — are marked dirty.
func (a *Analysis) UpsertAsset(as *Asset) error {
	if as == nil {
		return fmt.Errorf("tara: upsert of nil asset")
	}
	if err := as.Validate(); err != nil {
		return err
	}
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	if _, exists := tr.idx.assets[as.ID]; exists {
		for i, old := range a.Item.Assets {
			if old.ID == as.ID {
				a.Item.Assets[i] = as
				break
			}
		}
	} else {
		a.Item.Assets = append(a.Item.Assets, as)
	}
	tr.idx.assets[as.ID] = as
	tr.markDirty(tr.idx.threatsTouchingAsset(as.ID)...)
	tr.syncStructure(a)
	return nil
}

// RemoveAsset deletes an asset. It is an error if any damage or threat
// scenario still references it, or if it is the item's last asset.
func (a *Analysis) RemoveAsset(id string) error {
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	if _, ok := tr.idx.assets[id]; !ok {
		return fmt.Errorf("tara: remove: unknown asset %s", id)
	}
	for _, d := range a.Damages {
		for _, assetID := range d.AssetIDs {
			if assetID == id {
				return fmt.Errorf("tara: cannot remove asset %s: referenced by damage scenario %s", id, d.ID)
			}
		}
	}
	for _, t := range a.Threats {
		for _, assetID := range t.AssetIDs {
			if assetID == id {
				return fmt.Errorf("tara: cannot remove asset %s: referenced by threat scenario %s", id, t.ID)
			}
		}
	}
	if len(a.Item.Assets) == 1 {
		return fmt.Errorf("tara: cannot remove asset %s: item %s would have no assets", id, a.Item.Name)
	}
	a.Item.Assets = removeByID(a.Item.Assets, func(x *Asset) string { return x.ID }, id)
	delete(tr.idx.assets, id)
	tr.syncStructure(a)
	return nil
}

// UpsertDamage adds or replaces a damage scenario. Its referenced assets
// must exist. Threats linking the scenario are marked dirty.
func (a *Analysis) UpsertDamage(d *DamageScenario) error {
	if d == nil {
		return fmt.Errorf("tara: upsert of nil damage scenario")
	}
	if err := d.Validate(); err != nil {
		return err
	}
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	for _, assetID := range d.AssetIDs {
		if tr.idx.assets[assetID] == nil {
			return fmt.Errorf("tara: damage scenario %s references unknown asset %s", d.ID, assetID)
		}
	}
	if _, exists := tr.idx.damages[d.ID]; exists {
		for i, old := range a.Damages {
			if old.ID == d.ID {
				a.Damages[i] = d
				break
			}
		}
	} else {
		a.Damages = append(a.Damages, d)
	}
	tr.idx.damages[d.ID] = d
	tr.markDirty(tr.idx.threatsTouchingDamage(d.ID)...)
	tr.syncStructure(a)
	return nil
}

// RemoveDamage deletes a damage scenario. It is an error if any threat
// scenario still links it.
func (a *Analysis) RemoveDamage(id string) error {
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	if _, ok := tr.idx.damages[id]; !ok {
		return fmt.Errorf("tara: remove: unknown damage scenario %s", id)
	}
	if refs := tr.idx.threatsTouchingDamage(id); len(refs) > 0 {
		return fmt.Errorf("tara: cannot remove damage scenario %s: referenced by %d threat scenario(s)", id, len(refs))
	}
	a.Damages = removeByID(a.Damages, func(x *DamageScenario) string { return x.ID }, id)
	delete(tr.idx.damages, id)
	tr.syncStructure(a)
	return nil
}

// UpsertThreat adds or replaces a threat scenario. Its referenced
// damages and assets must exist. The threat is marked dirty; on replace
// it keeps its attack-path subgraph and any per-threat table override.
func (a *Analysis) UpsertThreat(t *ThreatScenario) error {
	if t == nil {
		return fmt.Errorf("tara: upsert of nil threat scenario")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	for _, dmgID := range t.DamageIDs {
		if tr.idx.damages[dmgID] == nil {
			return fmt.Errorf("tara: threat scenario %s references unknown damage scenario %s", t.ID, dmgID)
		}
	}
	for _, assetID := range t.AssetIDs {
		if tr.idx.assets[assetID] == nil {
			return fmt.Errorf("tara: threat scenario %s references unknown asset %s", t.ID, assetID)
		}
	}
	if _, exists := tr.idx.threats[t.ID]; exists {
		for i, old := range a.Threats {
			if old.ID == t.ID {
				a.Threats[i] = t
				break
			}
		}
	} else {
		a.Threats = append(a.Threats, t)
	}
	tr.idx.threats[t.ID] = t
	tr.markDirty(t.ID)
	tr.syncStructure(a)
	return nil
}

// RemoveThreat deletes a threat scenario together with its attack-path
// subgraph and any per-threat table override.
func (a *Analysis) RemoveThreat(id string) error {
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	if _, ok := tr.idx.threats[id]; !ok {
		return fmt.Errorf("tara: remove: unknown threat scenario %s", id)
	}
	if len(tr.idx.pathsByThreat[id]) > 0 {
		kept := a.Paths[:0]
		for _, p := range a.Paths {
			if p.ThreatID == id {
				delete(tr.idx.paths, p.ID)
				continue
			}
			kept = append(kept, p)
		}
		a.Paths = kept
		delete(tr.idx.pathsByThreat, id)
	}
	a.Threats = removeByID(a.Threats, func(x *ThreatScenario) string { return x.ID }, id)
	delete(tr.idx.threats, id)
	delete(tr.dirty, id)
	delete(tr.memo, id)
	if a.ThreatTables[id] != nil {
		delete(a.ThreatTables, id)
	}
	tr.syncStructure(a)
	tr.syncModels(a)
	return nil
}

// UpsertPath adds or replaces an attack path. Its threat scenario must
// exist. The owning threat (both old and new on a re-link) is marked
// dirty — the attack-path subgraph is the incremental unit.
func (a *Analysis) UpsertPath(p *AttackPath) error {
	if p == nil {
		return fmt.Errorf("tara: upsert of nil attack path")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	if tr.idx.threats[p.ThreatID] == nil {
		return fmt.Errorf("tara: attack path %s references unknown threat scenario %s", p.ID, p.ThreatID)
	}
	if old, exists := tr.idx.paths[p.ID]; exists {
		for i, cur := range a.Paths {
			if cur.ID == p.ID {
				a.Paths[i] = p
				break
			}
		}
		if old.ThreatID != p.ThreatID {
			tr.markDirty(old.ThreatID)
		}
		tr.idx.paths[p.ID] = p
		tr.rebuildAdjacency(a)
	} else {
		a.Paths = append(a.Paths, p)
		tr.idx.paths[p.ID] = p
		tr.idx.pathsByThreat[p.ThreatID] = append(tr.idx.pathsByThreat[p.ThreatID], p)
	}
	tr.markDirty(p.ThreatID)
	tr.syncStructure(a)
	return nil
}

// RemovePath deletes an attack path, marking its threat dirty.
func (a *Analysis) RemovePath(id string) error {
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	p, ok := tr.idx.paths[id]
	if !ok {
		return fmt.Errorf("tara: remove: unknown attack path %s", id)
	}
	a.Paths = removeByID(a.Paths, func(x *AttackPath) string { return x.ID }, id)
	delete(tr.idx.paths, id)
	tr.rebuildAdjacency(a)
	tr.markDirty(p.ThreatID)
	tr.syncStructure(a)
	return nil
}

// rebuildAdjacency recomputes the threat → path adjacency from the path
// slice, preserving registration order.
func (tr *tracker) rebuildAdjacency(a *Analysis) {
	tr.idx.pathsByThreat = make(map[string][]*AttackPath)
	for _, p := range a.Paths {
		tr.idx.pathsByThreat[p.ThreatID] = append(tr.idx.pathsByThreat[p.ThreatID], p)
	}
}

// SetVectorModel swaps the vector-based feasibility table, marking every
// threat dirty.
func (a *Analysis) SetVectorModel(t *VectorTable) error {
	if t == nil {
		return fmt.Errorf("tara: nil vector table")
	}
	return a.setModel(func() { a.VectorModel = t })
}

// SetPotentialModel swaps the attack potential weight model, marking
// every threat dirty.
func (a *Analysis) SetPotentialModel(w *AttackPotentialWeights) error {
	if w == nil {
		return fmt.Errorf("tara: nil potential weights")
	}
	return a.setModel(func() { a.PotentialModel = w })
}

// SetPotentialBands swaps the potential → feasibility thresholds,
// marking every threat dirty.
func (a *Analysis) SetPotentialBands(b PotentialThresholds) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return a.setModel(func() { a.PotentialBands = b })
}

// SetMatrix swaps the risk matrix, marking every threat dirty.
func (a *Analysis) SetMatrix(m *RiskMatrix) error {
	if m == nil {
		return fmt.Errorf("tara: nil risk matrix")
	}
	return a.setModel(func() { a.Matrix = m })
}

// SetCALModel swaps the CAL determination table, marking every threat
// dirty.
func (a *Analysis) SetCALModel(c *CALTable) error {
	if c == nil {
		return fmt.Errorf("tara: nil CAL table")
	}
	return a.setModel(func() { a.CALModel = c })
}

func (a *Analysis) setModel(apply func()) error {
	tr, err := a.ensureTracker()
	if err != nil {
		return err
	}
	apply()
	tr.markAllDirty()
	tr.syncModels(a)
	return nil
}

// SetThreatTable installs (or, with a nil table, clears) a per-threat
// vector table override, marking only that threat dirty. Installing a
// table rating-equal to the current one is a no-op: the threat stays
// clean and its memoized result remains valid. Returns whether the
// effective table changed.
func (a *Analysis) SetThreatTable(threatID string, table *VectorTable) (bool, error) {
	tr, err := a.ensureTracker()
	if err != nil {
		return false, err
	}
	if tr.idx.threats[threatID] == nil {
		return false, fmt.Errorf("tara: threat table override: unknown threat scenario %s", threatID)
	}
	cur := a.ThreatTables[threatID]
	if cur == nil && table == nil {
		return false, nil
	}
	if cur != nil && table != nil && cur.Equal(table) {
		// Rating-equivalent table: swap the pointer without dirtying.
		a.ThreatTables[threatID] = table
		tr.syncModels(a)
		return false, nil
	}
	if table == nil {
		delete(a.ThreatTables, threatID)
	} else {
		if a.ThreatTables == nil {
			a.ThreatTables = make(map[string]*VectorTable)
		}
		a.ThreatTables[threatID] = table
	}
	tr.markDirty(threatID)
	tr.syncModels(a)
	return true, nil
}

func removeByID[T any](s []*T, id func(*T) string, target string) []*T {
	kept := s[:0]
	for _, x := range s {
		if id(x) == target {
			continue
		}
		kept = append(kept, x)
	}
	return kept
}

// Clone returns a deep copy of the analysis entities — item, assets,
// damages, threats, paths — with no engine state attached, sharing the
// rating model tables (which are immutable by convention). A clone runs
// cold: its first Run rates every threat from scratch, which makes it
// the reference for incremental == cold equivalence checks.
func (a *Analysis) Clone() *Analysis {
	c := &Analysis{
		VectorModel:    a.VectorModel,
		PotentialModel: a.PotentialModel,
		PotentialBands: a.PotentialBands,
		Matrix:         a.Matrix,
		CALModel:       a.CALModel,
	}
	if a.Item != nil {
		item := &Item{Name: a.Item.Name, Description: a.Item.Description}
		for _, as := range a.Item.Assets {
			cp := *as
			cp.Properties = append([]SecurityProperty(nil), as.Properties...)
			item.Assets = append(item.Assets, &cp)
		}
		c.Item = item
	}
	for _, d := range a.Damages {
		cp := *d
		cp.AssetIDs = append([]string(nil), d.AssetIDs...)
		cp.Impacts = make(map[ImpactCategory]ImpactRating, len(d.Impacts))
		for k, v := range d.Impacts {
			cp.Impacts[k] = v
		}
		c.Damages = append(c.Damages, &cp)
	}
	for _, t := range a.Threats {
		cp := *t
		cp.DamageIDs = append([]string(nil), t.DamageIDs...)
		cp.AssetIDs = append([]string(nil), t.AssetIDs...)
		cp.Profiles = append([]AttackerProfile(nil), t.Profiles...)
		cp.Keywords = append([]string(nil), t.Keywords...)
		c.Threats = append(c.Threats, &cp)
	}
	for _, p := range a.Paths {
		cp := *p
		cp.Steps = make([]AttackStep, len(p.Steps))
		for i, s := range p.Steps {
			cp.Steps[i] = s
			if s.Potential != nil {
				pot := *s.Potential
				cp.Steps[i].Potential = &pot
			}
		}
		c.Paths = append(c.Paths, &cp)
	}
	if len(a.ThreatTables) > 0 {
		c.ThreatTables = make(map[string]*VectorTable, len(a.ThreatTables))
		for id, tbl := range a.ThreatTables {
			c.ThreatTables[id] = tbl
		}
	}
	return c
}
