package tara

import (
	"fmt"
	"math/rand"
)

// GenSpec sizes a synthetic analysis for benchmarks and property tests.
type GenSpec struct {
	// Name labels the generated item.
	Name string
	// Assets, Damages and Threats are the entity counts (all ≥ 1).
	Assets  int
	Damages int
	Threats int
	// PathsPerThreat is the attack-subgraph size per threat (may be 0:
	// such threats rate by their declared vector).
	PathsPerThreat int
	// Seed drives the deterministic pseudo-random construction.
	Seed int64
}

// GenerateAnalysis deterministically builds a valid analysis of the
// given shape: every damage references at least one asset, every threat
// links at least one damage, and roughly a third of the attack steps
// carry attack potential profiles. Same spec, same model.
func GenerateAnalysis(spec GenSpec) (*Analysis, error) {
	if spec.Assets < 1 || spec.Damages < 1 || spec.Threats < 1 || spec.PathsPerThreat < 0 {
		return nil, fmt.Errorf("tara: generate: invalid spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	name := spec.Name
	if name == "" {
		name = "synthetic item"
	}
	item := &Item{Name: name, Description: "generated for benchmarks and property tests"}
	for i := 0; i < spec.Assets; i++ {
		item.Assets = append(item.Assets, GenAsset(fmt.Sprintf("A-%03d", i), rng))
	}
	a := NewAnalysis(item)
	for i := 0; i < spec.Damages; i++ {
		a.AddDamage(GenDamage(fmt.Sprintf("DS-%03d", i), item.Assets, rng))
	}
	for i := 0; i < spec.Threats; i++ {
		t := GenThreat(fmt.Sprintf("TS-%03d", i), a.Damages, item.Assets, rng)
		a.AddThreat(t)
		for j := 0; j < spec.PathsPerThreat; j++ {
			a.AddPath(GenPath(fmt.Sprintf("AP-%03d-%02d", i, j), t.ID, rng))
		}
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("tara: generate: %w", err)
	}
	return a, nil
}

// GenAsset builds one pseudo-random valid asset.
func GenAsset(id string, rng *rand.Rand) *Asset {
	props := []SecurityProperty{
		PropertyConfidentiality + SecurityProperty(rng.Intn(int(PropertyNonRepudiation))),
	}
	return &Asset{
		ID:         id,
		Name:       "asset " + id,
		Properties: props,
		ECU:        fmt.Sprintf("ECU-%d", rng.Intn(8)),
	}
}

// GenDamage builds one pseudo-random valid damage scenario referencing
// one to three of the given assets.
func GenDamage(id string, assets []*Asset, rng *rand.Rand) *DamageScenario {
	n := 1 + rng.Intn(3)
	ids := make([]string, 0, n)
	for k := 0; k < n; k++ {
		ids = append(ids, assets[rng.Intn(len(assets))].ID)
	}
	impacts := map[ImpactCategory]ImpactRating{
		CategorySafety + ImpactCategory(rng.Intn(4)): ImpactNegligible + ImpactRating(rng.Intn(4)),
	}
	return &DamageScenario{ID: id, Description: "damage " + id, AssetIDs: ids, Impacts: impacts}
}

// GenThreat builds one pseudo-random valid threat scenario linking one
// or two damages and up to two assets.
func GenThreat(id string, damages []*DamageScenario, assets []*Asset, rng *rand.Rand) *ThreatScenario {
	dmg := []string{damages[rng.Intn(len(damages))].ID}
	if rng.Intn(2) == 1 && len(damages) > 1 {
		dmg = append(dmg, damages[rng.Intn(len(damages))].ID)
	}
	var assetIDs []string
	for k := rng.Intn(3); k > 0; k-- {
		assetIDs = append(assetIDs, assets[rng.Intn(len(assets))].ID)
	}
	return &ThreatScenario{
		ID:        id,
		Name:      "threat " + id,
		DamageIDs: dmg,
		AssetIDs:  assetIDs,
		Property:  PropertyConfidentiality + SecurityProperty(rng.Intn(int(PropertyNonRepudiation))),
		STRIDE:    Spoofing + STRIDECategory(rng.Intn(int(ElevationOfPrivilege))),
		Profiles:  []AttackerProfile{ProfileInsider + AttackerProfile(rng.Intn(int(ProfileRemote)))},
		Vector:    VectorPhysical + AttackVector(rng.Intn(4)),
	}
}

// GenPath builds one pseudo-random valid attack path of one to three
// steps; roughly a third of the steps carry potential profiles.
func GenPath(id, threatID string, rng *rand.Rand) *AttackPath {
	n := 1 + rng.Intn(3)
	steps := make([]AttackStep, 0, n)
	for k := 0; k < n; k++ {
		s := AttackStep{
			Description: fmt.Sprintf("step %d of %s", k, id),
			Vector:      VectorPhysical + AttackVector(rng.Intn(4)),
		}
		if rng.Intn(3) == 0 {
			s.Potential = &AttackPotentialInput{
				Time:      TimeOneDay + ElapsedTime(rng.Intn(5)),
				Expertise: ExpertiseLayman + SpecialistExpertise(rng.Intn(4)),
				Knowledge: KnowledgePublic + ItemKnowledge(rng.Intn(4)),
				Window:    WindowUnlimited + WindowOfOpportunity(rng.Intn(4)),
				Equipment: EquipmentStandard + Equipment(rng.Intn(4)),
			}
		}
		steps = append(steps, s)
	}
	return &AttackPath{ID: id, ThreatID: threatID, Steps: steps}
}
