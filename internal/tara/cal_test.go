package tara

import "testing"

func TestStandardCALTableFig6(t *testing.T) {
	tbl := StandardCALTable()
	tests := []struct {
		impact ImpactRating
		vector AttackVector
		want   CAL
	}{
		{ImpactSevere, VectorPhysical, CAL2},
		{ImpactSevere, VectorLocal, CAL3},
		{ImpactSevere, VectorAdjacent, CAL4},
		{ImpactSevere, VectorNetwork, CAL4},
		{ImpactMajor, VectorPhysical, CAL1},
		{ImpactMajor, VectorLocal, CAL2},
		{ImpactMajor, VectorAdjacent, CAL3},
		{ImpactMajor, VectorNetwork, CAL3},
		{ImpactModerate, VectorPhysical, CAL1},
		{ImpactModerate, VectorLocal, CAL1},
		{ImpactModerate, VectorAdjacent, CAL2},
		{ImpactModerate, VectorNetwork, CAL2},
		{ImpactNegligible, VectorPhysical, CALNone},
		{ImpactNegligible, VectorNetwork, CALNone},
	}
	for _, tt := range tests {
		got, err := tbl.Determine(tt.impact, tt.vector)
		if err != nil {
			t.Fatalf("Determine(%s, %s): %v", tt.impact, tt.vector, err)
		}
		if got != tt.want {
			t.Errorf("Determine(%s, %s) = %s, want %s", tt.impact, tt.vector, got, tt.want)
		}
	}
}

func TestPhysicalAttackCapsAtCAL2(t *testing.T) {
	// The paper's criticism: powertrain DoS via physical attack never
	// exceeds CAL2 under the standard table, regardless of safety impact.
	maxCAL, err := StandardCALTable().MaxForVector(VectorPhysical)
	if err != nil {
		t.Fatal(err)
	}
	if maxCAL != CAL2 {
		t.Errorf("max CAL for physical vector = %s, want CAL2", maxCAL)
	}
	maxNet, err := StandardCALTable().MaxForVector(VectorNetwork)
	if err != nil {
		t.Fatal(err)
	}
	if maxNet != CAL4 {
		t.Errorf("max CAL for network vector = %s, want CAL4", maxNet)
	}
}

func TestCALString(t *testing.T) {
	tests := []struct {
		cal  CAL
		want string
	}{
		{CALNone, "-"},
		{CAL1, "CAL1"},
		{CAL4, "CAL4"},
		{CAL(9), "CAL(9)"},
	}
	for _, tt := range tests {
		if got := tt.cal.String(); got != tt.want {
			t.Errorf("CAL(%d).String() = %q, want %q", int(tt.cal), got, tt.want)
		}
	}
}

func TestDetermineRejectsInvalidInputs(t *testing.T) {
	tbl := StandardCALTable()
	if _, err := tbl.Determine(ImpactRating(0), VectorNetwork); err == nil {
		t.Error("Determine with invalid impact succeeded, want error")
	}
	if _, err := tbl.Determine(ImpactSevere, AttackVector(0)); err == nil {
		t.Error("Determine with invalid vector succeeded, want error")
	}
	if _, err := tbl.MaxForVector(AttackVector(7)); err == nil {
		t.Error("MaxForVector with invalid vector succeeded, want error")
	}
}

func TestNewCALTableValidation(t *testing.T) {
	full := StandardCALTable()
	// Rebuilding from the standard's cells succeeds.
	cells := map[ImpactRating]map[AttackVector]CAL{}
	for _, imp := range []ImpactRating{ImpactNegligible, ImpactModerate, ImpactMajor, ImpactSevere} {
		row := map[AttackVector]CAL{}
		for _, v := range AllVectors() {
			c, err := full.Determine(imp, v)
			if err != nil {
				t.Fatal(err)
			}
			row[v] = c
		}
		cells[imp] = row
	}
	if _, err := NewCALTable("rebuilt", cells); err != nil {
		t.Fatalf("NewCALTable(standard cells): %v", err)
	}
	// Missing a row fails.
	delete(cells, ImpactMajor)
	if _, err := NewCALTable("missing row", cells); err == nil {
		t.Error("NewCALTable with missing impact row succeeded, want error")
	}
}
