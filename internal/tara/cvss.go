package tara

import "fmt"

// The CVSS-based approach (ISO/SAE 21434 Annex G.2.3) derives attack
// feasibility from the exploitability metrics of the CVSS v3.1 base score:
// attack vector, attack complexity, privileges required and user
// interaction.
//
//	exploitability = 8.22 × AV × AC × PR × UI

// AttackComplexity is the CVSS v3.1 attack complexity metric.
type AttackComplexity int

// Attack complexity values.
const (
	ComplexityLow AttackComplexity = iota + 1
	ComplexityHigh
)

// PrivilegesRequired is the CVSS v3.1 privileges required metric.
type PrivilegesRequired int

// Privileges required values.
const (
	PrivilegesNone PrivilegesRequired = iota + 1
	PrivilegesLow
	PrivilegesHigh
)

// UserInteraction is the CVSS v3.1 user interaction metric.
type UserInteraction int

// User interaction values.
const (
	InteractionNone UserInteraction = iota + 1
	InteractionRequired
)

// CVSSInput carries the four exploitability metrics.
type CVSSInput struct {
	Vector      AttackVector
	Complexity  AttackComplexity
	Privileges  PrivilegesRequired
	Interaction UserInteraction
	// ChangedScope selects the scope-changed coefficient for
	// PrivilegesLow/High, as defined by CVSS v3.1.
	ChangedScope bool
}

// Validate reports the first invalid metric, if any.
func (in CVSSInput) Validate() error {
	switch {
	case !in.Vector.Valid():
		return fmt.Errorf("tara: invalid CVSS attack vector %d", int(in.Vector))
	case in.Complexity < ComplexityLow || in.Complexity > ComplexityHigh:
		return fmt.Errorf("tara: invalid CVSS attack complexity %d", int(in.Complexity))
	case in.Privileges < PrivilegesNone || in.Privileges > PrivilegesHigh:
		return fmt.Errorf("tara: invalid CVSS privileges required %d", int(in.Privileges))
	case in.Interaction < InteractionNone || in.Interaction > InteractionRequired:
		return fmt.Errorf("tara: invalid CVSS user interaction %d", int(in.Interaction))
	}
	return nil
}

// cvss v3.1 coefficient tables.
var (
	cvssVector = map[AttackVector]float64{
		VectorNetwork:  0.85,
		VectorAdjacent: 0.62,
		VectorLocal:    0.55,
		VectorPhysical: 0.20,
	}
	cvssComplexity = map[AttackComplexity]float64{
		ComplexityLow:  0.77,
		ComplexityHigh: 0.44,
	}
	cvssPrivileges = map[PrivilegesRequired]float64{
		PrivilegesNone: 0.85,
		PrivilegesLow:  0.62,
		PrivilegesHigh: 0.27,
	}
	cvssPrivilegesChanged = map[PrivilegesRequired]float64{
		PrivilegesNone: 0.85,
		PrivilegesLow:  0.68,
		PrivilegesHigh: 0.50,
	}
	cvssInteraction = map[UserInteraction]float64{
		InteractionNone:     0.85,
		InteractionRequired: 0.62,
	}
)

// Exploitability computes the CVSS v3.1 exploitability sub-score
// (0 < score ≤ 3.89).
func Exploitability(in CVSSInput) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	pr := cvssPrivileges
	if in.ChangedScope {
		pr = cvssPrivilegesChanged
	}
	return 8.22 * cvssVector[in.Vector] * cvssComplexity[in.Complexity] *
		pr[in.Privileges] * cvssInteraction[in.Interaction], nil
}

// CVSSThresholds maps an exploitability sub-score onto a feasibility
// rating. Scores strictly below VeryLowMax rate Very Low, below LowMax
// rate Low, below MediumMax rate Medium, and anything else rates High.
type CVSSThresholds struct {
	VeryLowMax float64
	LowMax     float64
	MediumMax  float64
}

// StandardCVSSThresholds returns the score → rating bands used by the
// standard's example mapping: <1.0 Very Low, <2.0 Low, <3.0 Medium,
// ≥3.0 High. (The standard leaves the exact bands to the organization;
// these defaults follow its informative example.)
func StandardCVSSThresholds() CVSSThresholds {
	return CVSSThresholds{VeryLowMax: 1.0, LowMax: 2.0, MediumMax: 3.0}
}

// Validate checks that the bands are monotonically ordered.
func (c CVSSThresholds) Validate() error {
	if c.VeryLowMax <= 0 || c.LowMax <= c.VeryLowMax || c.MediumMax <= c.LowMax {
		return fmt.Errorf("tara: invalid CVSS thresholds %+v", c)
	}
	return nil
}

// Rating maps an exploitability sub-score onto a feasibility rating.
func (c CVSSThresholds) Rating(score float64) FeasibilityRating {
	switch {
	case score < c.VeryLowMax:
		return FeasibilityVeryLow
	case score < c.LowMax:
		return FeasibilityLow
	case score < c.MediumMax:
		return FeasibilityMedium
	default:
		return FeasibilityHigh
	}
}

// RateCVSS runs the full CVSS-based approach: exploitability computation
// followed by threshold mapping.
func RateCVSS(th CVSSThresholds, in CVSSInput) (FeasibilityRating, error) {
	if err := th.Validate(); err != nil {
		return 0, err
	}
	score, err := Exploitability(in)
	if err != nil {
		return 0, err
	}
	return th.Rating(score), nil
}
