package tara

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalysisJSONRoundTrip(t *testing.T) {
	orig := ecmAnalysis()
	// Add a path with a potential profile so that branch round-trips.
	orig.AddPath(&AttackPath{
		ID: "AP-02", ThreatID: "TS-02",
		Steps: []AttackStep{{
			Description: "splice into the bus",
			Vector:      VectorPhysical,
			Potential: &AttackPotentialInput{
				Time: TimeOneDay, Expertise: ExpertiseProficient,
				Knowledge: KnowledgePublic, Window: WindowEasy,
				Equipment: EquipmentStandard,
			},
		}},
	})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Semantic equality: both analyses produce identical results.
	origResults, err := orig.Run()
	if err != nil {
		t.Fatal(err)
	}
	backResults, err := back.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(origResults) != len(backResults) {
		t.Fatalf("result counts differ: %d vs %d", len(origResults), len(backResults))
	}
	for i := range origResults {
		o, b := origResults[i], backResults[i]
		if o.Threat.ID != b.Threat.ID || o.Impact != b.Impact ||
			o.Feasibility != b.Feasibility || o.Risk != b.Risk ||
			o.CAL != b.CAL || o.Treatment != b.Treatment {
			t.Errorf("result %d differs:\n%+v\n%+v", i, o, b)
		}
	}
	// Structural spot checks.
	if back.Item.Name != orig.Item.Name || len(back.Item.Assets) != len(orig.Item.Assets) {
		t.Error("item lost in round trip")
	}
	if len(back.Paths) != len(orig.Paths) {
		t.Errorf("paths = %d, want %d", len(back.Paths), len(orig.Paths))
	}
	if back.Paths[1].Steps[0].Potential == nil {
		t.Error("potential profile lost in round trip")
	}
}

func TestAnalysisJSONCustomVectorModel(t *testing.T) {
	a := ecmAnalysis()
	retuned, err := NewVectorTable("PSP insider", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh,
		VectorLocal:    FeasibilityMedium,
		VectorAdjacent: FeasibilityLow,
		VectorNetwork:  FeasibilityVeryLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.VectorModel = retuned
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PSP insider") {
		t.Error("custom vector model not serialized")
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.VectorModel.Equal(retuned) {
		t.Error("vector model lost in round trip")
	}
	// The standard table is NOT serialized (defaults reinstall on read).
	std := ecmAnalysis()
	buf.Reset()
	if err := std.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "vector_model") {
		t.Error("standard vector model serialized redundantly")
	}
}

func TestWriteJSONRejectsInvalidAnalysis(t *testing.T) {
	a := ecmAnalysis()
	a.Threats[0].DamageIDs = []string{"DS-404"}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err == nil {
		t.Error("invalid analysis serialized")
	}
}

func TestReadJSONRejectsBadDocuments(t *testing.T) {
	cases := []string{
		"not json",
		"{}", // no item
		`{"item":{"name":"X","assets":[{"id":"A","name":"a","properties":["Levitation"]}]},
		  "damage_scenarios":[],"threat_scenarios":[],"attack_paths":[]}`,
		`{"item":{"name":"X","assets":[{"id":"A","name":"a","properties":["Integrity"]}]},
		  "damage_scenarios":[{"id":"D","impacts":{"Safety":"Apocalyptic"}}],
		  "threat_scenarios":[],"attack_paths":[]}`,
	}
	for i, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: bad document accepted", i)
		}
	}
}

func TestEnumNameParsers(t *testing.T) {
	if p, err := parseProperty("integrity"); err != nil || p != PropertyIntegrity {
		t.Errorf("parseProperty = %v, %v", p, err)
	}
	if p, err := parseProperty("Non-Repudiation"); err != nil || p != PropertyNonRepudiation {
		t.Errorf("parseProperty non-repudiation = %v, %v", p, err)
	}
	if c, err := parseCategory("Privacy"); err != nil || c != CategoryPrivacy {
		t.Errorf("parseCategory = %v, %v", c, err)
	}
	if s, err := parseSTRIDE("denial of service"); err != nil || s != DenialOfService {
		t.Errorf("parseSTRIDE = %v, %v", s, err)
	}
	if p, err := parseProfile("outsider"); err != nil || p != ProfileOutsider {
		t.Errorf("parseProfile = %v, %v", p, err)
	}
	for _, bad := range []string{"", "quantum"} {
		if _, err := parseProperty(bad); err == nil {
			t.Errorf("parseProperty(%q) accepted", bad)
		}
	}
}
