package tara

import (
	"testing"
	"testing/quick"
)

func TestDeriveImpacts(t *testing.T) {
	impacts, err := DeriveImpacts(ImpactParams{
		Safety:      SafetyLifeThreat,
		Financial:   FinancialLow,
		Operational: OperationalPartial,
		Privacy:     PrivacyNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[ImpactCategory]ImpactRating{
		CategorySafety:      ImpactSevere,
		CategoryFinancial:   ImpactModerate,
		CategoryOperational: ImpactMajor,
		CategoryPrivacy:     ImpactNegligible,
	}
	for c, r := range want {
		if impacts[c] != r {
			t.Errorf("impact[%s] = %v, want %v", c, impacts[c], r)
		}
	}
}

func TestDeriveImpactsValidation(t *testing.T) {
	bad := []ImpactParams{
		{Safety: SafetyLevel(4)},
		{Financial: FinancialLevel(-1)},
		{Operational: OperationalLevel(9)},
		{Privacy: PrivacyLevel(5)},
	}
	for i, p := range bad {
		if _, err := DeriveImpacts(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestNewDamageScenarioFromParams(t *testing.T) {
	d, err := NewDamageScenario("DS-H1", "torque loss while driving", []string{"A1"},
		ImpactParams{Safety: SafetyLifeThreat})
	if err != nil {
		t.Fatal(err)
	}
	if d.OverallImpact() != ImpactSevere {
		t.Errorf("overall = %v, want Severe", d.OverallImpact())
	}
	if _, err := NewDamageScenario("", "x", nil, ImpactParams{}); err == nil {
		t.Error("empty ID accepted")
	}
}

// Property: the derivation is monotone — raising any parameter level
// never lowers the overall impact — and total (all valid level vectors
// derive).
func TestDeriveImpactsMonotoneProperty(t *testing.T) {
	f := func(s1, f1, o1, p1, bump uint8) bool {
		base := ImpactParams{
			Safety:      SafetyLevel(s1 % 4),
			Financial:   FinancialLevel(f1 % 4),
			Operational: OperationalLevel(o1 % 4),
			Privacy:     PrivacyLevel(p1 % 4),
		}
		raised := base
		switch bump % 4 {
		case 0:
			if raised.Safety < SafetyLifeThreat {
				raised.Safety++
			}
		case 1:
			if raised.Financial < FinancialHigh {
				raised.Financial++
			}
		case 2:
			if raised.Operational < OperationalFull {
				raised.Operational++
			}
		case 3:
			if raised.Privacy < PrivacySensitive {
				raised.Privacy++
			}
		}
		a, err := DeriveImpacts(base)
		if err != nil {
			return false
		}
		b, err := DeriveImpacts(raised)
		if err != nil {
			return false
		}
		overall := func(m map[ImpactCategory]ImpactRating) ImpactRating {
			var max ImpactRating
			for _, r := range m {
				if r > max {
					max = r
				}
			}
			return max
		}
		return overall(b) >= overall(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
