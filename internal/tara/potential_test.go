package tara

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestStandardPotentialWeightsFig3(t *testing.T) {
	// Spot-check the fixed weights reproduced in Fig. 3 of the paper.
	w := StandardPotentialWeights()
	tests := []struct {
		name string
		got  int
		want int
	}{
		{"time ≤1 day", w.ElapsedTime[TimeOneDay], 0},
		{"time ≤1 week", w.ElapsedTime[TimeOneWeek], 1},
		{"time ≤1 month", w.ElapsedTime[TimeOneMonth], 4},
		{"time ≤6 months", w.ElapsedTime[TimeSixMonths], 17},
		{"time >6 months", w.ElapsedTime[TimeBeyondSixMonths], 19},
		{"layman", w.Expertise[ExpertiseLayman], 0},
		{"proficient", w.Expertise[ExpertiseProficient], 3},
		{"expert", w.Expertise[ExpertiseExpert], 6},
		{"multiple experts", w.Expertise[ExpertiseMultipleExperts], 8},
		{"public knowledge", w.Knowledge[KnowledgePublic], 0},
		{"restricted", w.Knowledge[KnowledgeRestricted], 3},
		{"confidential", w.Knowledge[KnowledgeConfidential], 7},
		{"strictly confidential", w.Knowledge[KnowledgeStrictlyConfidential], 11},
		{"window unlimited", w.Window[WindowUnlimited], 0},
		{"window easy", w.Window[WindowEasy], 1},
		{"window moderate", w.Window[WindowModerate], 4},
		{"window difficult", w.Window[WindowDifficult], 10},
		{"standard equipment", w.Equipment[EquipmentStandard], 0},
		{"specialized", w.Equipment[EquipmentSpecialized], 4},
		{"bespoke", w.Equipment[EquipmentBespoke], 7},
		{"multiple bespoke", w.Equipment[EquipmentMultipleBespoke], 9},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s weight = %d, want %d", tt.name, tt.got, tt.want)
		}
	}
}

func TestPotentialAggregation(t *testing.T) {
	w := StandardPotentialWeights()
	tests := []struct {
		name string
		in   AttackPotentialInput
		want int
	}{
		{
			name: "trivial attack sums to zero",
			in: AttackPotentialInput{
				Time: TimeOneDay, Expertise: ExpertiseLayman, Knowledge: KnowledgePublic,
				Window: WindowUnlimited, Equipment: EquipmentStandard,
			},
			want: 0,
		},
		{
			name: "hardest attack sums to maximum",
			in: AttackPotentialInput{
				Time: TimeBeyondSixMonths, Expertise: ExpertiseMultipleExperts,
				Knowledge: KnowledgeStrictlyConfidential, Window: WindowDifficult,
				Equipment: EquipmentMultipleBespoke,
			},
			want: 19 + 8 + 11 + 10 + 9,
		},
		{
			name: "powertrain insider: unlimited time, free access, OBD tools",
			in: AttackPotentialInput{
				Time: TimeOneWeek, Expertise: ExpertiseProficient, Knowledge: KnowledgePublic,
				Window: WindowUnlimited, Equipment: EquipmentSpecialized,
			},
			want: 1 + 3 + 0 + 0 + 4,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := w.Potential(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Potential() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestPotentialValidation(t *testing.T) {
	w := StandardPotentialWeights()
	bad := []AttackPotentialInput{
		{},
		{Time: TimeOneDay},
		{Time: TimeOneDay, Expertise: ExpertiseLayman, Knowledge: KnowledgePublic, Window: WindowUnlimited},
		{Time: ElapsedTime(9), Expertise: ExpertiseLayman, Knowledge: KnowledgePublic,
			Window: WindowUnlimited, Equipment: EquipmentStandard},
	}
	for i, in := range bad {
		if _, err := w.Potential(in); err == nil {
			t.Errorf("case %d: Potential(%+v) succeeded, want error", i, in)
		}
	}
}

func TestPotentialIncompleteWeights(t *testing.T) {
	w := StandardPotentialWeights()
	delete(w.Equipment, EquipmentBespoke)
	_, err := w.Potential(AttackPotentialInput{
		Time: TimeOneDay, Expertise: ExpertiseLayman, Knowledge: KnowledgePublic,
		Window: WindowUnlimited, Equipment: EquipmentBespoke,
	})
	if !errors.Is(err, ErrIncompleteWeights) {
		t.Errorf("error = %v, want ErrIncompleteWeights", err)
	}
}

func TestPotentialThresholdBands(t *testing.T) {
	th := StandardPotentialThresholds()
	tests := []struct {
		potential int
		want      FeasibilityRating
	}{
		{0, FeasibilityHigh},
		{13, FeasibilityHigh},
		{14, FeasibilityMedium},
		{19, FeasibilityMedium},
		{20, FeasibilityLow},
		{24, FeasibilityLow},
		{25, FeasibilityVeryLow},
		{57, FeasibilityVeryLow},
	}
	for _, tt := range tests {
		if got := th.Rating(tt.potential); got != tt.want {
			t.Errorf("Rating(%d) = %v, want %v", tt.potential, got, tt.want)
		}
	}
}

func TestPotentialThresholdValidation(t *testing.T) {
	bad := []PotentialThresholds{
		{HighMax: -1, MediumMax: 5, LowMax: 10},
		{HighMax: 10, MediumMax: 10, LowMax: 20},
		{HighMax: 10, MediumMax: 20, LowMax: 15},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) succeeded, want error", i, th)
		}
	}
	if err := StandardPotentialThresholds().Validate(); err != nil {
		t.Errorf("standard thresholds invalid: %v", err)
	}
}

func TestRatePotentialEndToEnd(t *testing.T) {
	w := StandardPotentialWeights()
	th := StandardPotentialThresholds()
	// The paper's powertrain argument: an insider with unlimited time and
	// device access needs low attack potential, hence rates High even
	// though the attack is physical.
	insider := AttackPotentialInput{
		Time: TimeOneWeek, Expertise: ExpertiseProficient, Knowledge: KnowledgePublic,
		Window: WindowUnlimited, Equipment: EquipmentSpecialized,
	}
	got, err := RatePotential(w, th, insider)
	if err != nil {
		t.Fatal(err)
	}
	if got != FeasibilityHigh {
		t.Errorf("insider powertrain profile rated %v, want High", got)
	}
	// A remote attack without FOTA needs months, experts and bespoke
	// tooling, rating Very Low.
	remote := AttackPotentialInput{
		Time: TimeBeyondSixMonths, Expertise: ExpertiseMultipleExperts,
		Knowledge: KnowledgeConfidential, Window: WindowDifficult,
		Equipment: EquipmentBespoke,
	}
	got, err = RatePotential(w, th, remote)
	if err != nil {
		t.Fatal(err)
	}
	if got != FeasibilityVeryLow {
		t.Errorf("remote no-FOTA profile rated %v, want Very Low", got)
	}
}

// Property: the potential value is monotone — raising any one parameter
// level never lowers the total.
func TestPotentialMonotoneProperty(t *testing.T) {
	w := StandardPotentialWeights()
	base := AttackPotentialInput{
		Time: TimeOneDay, Expertise: ExpertiseLayman, Knowledge: KnowledgePublic,
		Window: WindowUnlimited, Equipment: EquipmentStandard,
	}
	f := func(t1, e1, k1, w1, q1 uint8) bool {
		in := AttackPotentialInput{
			Time:      TimeOneDay + ElapsedTime(t1%5),
			Expertise: ExpertiseLayman + SpecialistExpertise(e1%4),
			Knowledge: KnowledgePublic + ItemKnowledge(k1%4),
			Window:    WindowUnlimited + WindowOfOpportunity(w1%4),
			Equipment: EquipmentStandard + Equipment(q1%4),
		}
		got, err := w.Potential(in)
		if err != nil {
			return false
		}
		baseVal, err := w.Potential(base)
		if err != nil {
			return false
		}
		return got >= baseVal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: higher potential value never yields a higher feasibility
// rating (anti-monotone mapping).
func TestThresholdAntiMonotoneProperty(t *testing.T) {
	th := StandardPotentialThresholds()
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return th.Rating(x) >= th.Rating(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
