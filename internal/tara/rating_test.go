package tara

import (
	"testing"
	"testing/quick"
)

func TestFeasibilityString(t *testing.T) {
	tests := []struct {
		rating FeasibilityRating
		want   string
	}{
		{FeasibilityVeryLow, "Very Low"},
		{FeasibilityLow, "Low"},
		{FeasibilityMedium, "Medium"},
		{FeasibilityHigh, "High"},
		{FeasibilityRating(0), "FeasibilityRating(0)"},
		{FeasibilityRating(99), "FeasibilityRating(99)"},
	}
	for _, tt := range tests {
		if got := tt.rating.String(); got != tt.want {
			t.Errorf("FeasibilityRating(%d).String() = %q, want %q", int(tt.rating), got, tt.want)
		}
	}
}

func TestFeasibilityOrdering(t *testing.T) {
	if !(FeasibilityVeryLow < FeasibilityLow &&
		FeasibilityLow < FeasibilityMedium &&
		FeasibilityMedium < FeasibilityHigh) {
		t.Fatal("feasibility ratings are not strictly ordered")
	}
}

func TestParseFeasibility(t *testing.T) {
	tests := []struct {
		in      string
		want    FeasibilityRating
		wantErr bool
	}{
		{"very low", FeasibilityVeryLow, false},
		{"Very Low", FeasibilityVeryLow, false},
		{"VERY_LOW", FeasibilityVeryLow, false},
		{"very-low", FeasibilityVeryLow, false},
		{"vl", FeasibilityVeryLow, false},
		{"low", FeasibilityLow, false},
		{"Medium", FeasibilityMedium, false},
		{" med ", FeasibilityMedium, false},
		{"HIGH", FeasibilityHigh, false},
		{"h", FeasibilityHigh, false},
		{"", 0, true},
		{"extreme", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseFeasibility(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseFeasibility(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseFeasibility(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseFeasibilityRoundTrip(t *testing.T) {
	for _, r := range []FeasibilityRating{FeasibilityVeryLow, FeasibilityLow, FeasibilityMedium, FeasibilityHigh} {
		got, err := ParseFeasibility(r.String())
		if err != nil {
			t.Fatalf("ParseFeasibility(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip %v → %q → %v", r, r.String(), got)
		}
	}
}

func TestImpactString(t *testing.T) {
	tests := []struct {
		rating ImpactRating
		want   string
	}{
		{ImpactNegligible, "Negligible"},
		{ImpactModerate, "Moderate"},
		{ImpactMajor, "Major"},
		{ImpactSevere, "Severe"},
		{ImpactRating(0), "ImpactRating(0)"},
	}
	for _, tt := range tests {
		if got := tt.rating.String(); got != tt.want {
			t.Errorf("ImpactRating(%d).String() = %q, want %q", int(tt.rating), got, tt.want)
		}
	}
}

func TestParseImpactRoundTrip(t *testing.T) {
	for _, r := range []ImpactRating{ImpactNegligible, ImpactModerate, ImpactMajor, ImpactSevere} {
		got, err := ParseImpact(r.String())
		if err != nil {
			t.Fatalf("ParseImpact(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip %v → %q → %v", r, r.String(), got)
		}
	}
}

func TestParseImpactRejectsUnknown(t *testing.T) {
	for _, in := range []string{"", "huge", "catastrophic", "sev ere"} {
		if _, err := ParseImpact(in); err == nil {
			t.Errorf("ParseImpact(%q) succeeded, want error", in)
		}
	}
}

func TestLevelUnratedIsZero(t *testing.T) {
	if got := FeasibilityRating(0).Level(); got != 0 {
		t.Errorf("unrated feasibility Level() = %d, want 0", got)
	}
	if got := ImpactRating(0).Level(); got != 0 {
		t.Errorf("unrated impact Level() = %d, want 0", got)
	}
	if got := FeasibilityHigh.Level(); got != 4 {
		t.Errorf("FeasibilityHigh.Level() = %d, want 4", got)
	}
	if got := ImpactSevere.Level(); got != 4 {
		t.Errorf("ImpactSevere.Level() = %d, want 4", got)
	}
}

// Property: Valid() exactly matches Level() being non-zero, for arbitrary
// integer inputs.
func TestValidMatchesLevelProperty(t *testing.T) {
	f := func(n int8) bool {
		fr := FeasibilityRating(n)
		ir := ImpactRating(n)
		return fr.Valid() == (fr.Level() != 0) && ir.Valid() == (ir.Level() != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Very Low", "very low"},
		{"  VERY   LOW  ", "very low"},
		{"very_low", "very low"},
		{"very-low", "very low"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := normalizeName(tt.in); got != tt.want {
			t.Errorf("normalizeName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
