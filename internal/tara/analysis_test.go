package tara

import "testing"

// ecmAnalysis builds the paper's running example: an Engine Control Module
// item with the ECM-reprogramming threat scenario and a physically
// dominated attack path.
func ecmAnalysis() *Analysis {
	item := &Item{
		Name:        "Engine Control Module",
		Description: "Hard real-time powertrain ECU on the CAN powertrain subnet, OBD-accessible",
		Assets: []*Asset{
			{
				ID: "ECM-FW", Name: "ECM firmware",
				Description: "Application firmware and calibration maps",
				Properties:  []SecurityProperty{PropertyIntegrity, PropertyAuthenticity},
				ECU:         "ECM",
			},
			{
				ID: "ECM-CAN", Name: "Powertrain CAN traffic",
				Description: "Torque and emission-control frames",
				Properties:  []SecurityProperty{PropertyIntegrity, PropertyAvailability},
				ECU:         "ECM",
			},
		},
	}
	a := NewAnalysis(item)
	a.AddDamage(&DamageScenario{
		ID:          "DS-01",
		Description: "Emission controls defeated; non-compliant exhaust while driving",
		AssetIDs:    []string{"ECM-FW"},
		Impacts: map[ImpactCategory]ImpactRating{
			CategorySafety:      ImpactModerate,
			CategoryFinancial:   ImpactMajor,
			CategoryOperational: ImpactModerate,
		},
	})
	a.AddDamage(&DamageScenario{
		ID:          "DS-02",
		Description: "Loss of torque control; unintended acceleration",
		AssetIDs:    []string{"ECM-CAN"},
		Impacts: map[ImpactCategory]ImpactRating{
			CategorySafety: ImpactSevere,
		},
	})
	a.AddThreat(&ThreatScenario{
		ID: "TS-01", Name: "ECM reprogramming",
		Description: "Owner-approved reflash of calibration maps (chip tuning, defeat device)",
		DamageIDs:   []string{"DS-01"},
		AssetIDs:    []string{"ECM-FW"},
		Property:    PropertyIntegrity,
		STRIDE:      Tampering,
		Profiles:    []AttackerProfile{ProfileInsider, ProfileRational, ProfileLocal},
		Vector:      VectorPhysical,
		Keywords:    []string{"chiptuning", "ecm reflash"},
	})
	a.AddThreat(&ThreatScenario{
		ID: "TS-02", Name: "CAN DoS on powertrain subnet",
		Description: "Signal-extinction DoS against torque frames via physical bus access",
		DamageIDs:   []string{"DS-02"},
		AssetIDs:    []string{"ECM-CAN"},
		Property:    PropertyAvailability,
		STRIDE:      DenialOfService,
		Profiles:    []AttackerProfile{ProfileOutsider, ProfileMalicious},
		Vector:      VectorPhysical,
	})
	a.AddPath(&AttackPath{
		ID: "AP-01", ThreatID: "TS-01",
		Steps: []AttackStep{
			{Description: "access cabin OBD port", Vector: VectorLocal},
			{Description: "bench-flash modified calibration", Vector: VectorPhysical},
		},
	})
	return a
}

func TestAnalysisValidate(t *testing.T) {
	if err := ecmAnalysis().Validate(); err != nil {
		t.Fatalf("valid analysis rejected: %v", err)
	}
}

func TestAnalysisValidateCatchesDanglingReferences(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Analysis)
	}{
		{"threat references unknown damage", func(a *Analysis) {
			a.Threats[0].DamageIDs = []string{"DS-99"}
		}},
		{"threat references unknown asset", func(a *Analysis) {
			a.Threats[0].AssetIDs = []string{"GHOST"}
		}},
		{"damage references unknown asset", func(a *Analysis) {
			a.Damages[0].AssetIDs = []string{"GHOST"}
		}},
		{"path references unknown threat", func(a *Analysis) {
			a.Paths[0].ThreatID = "TS-99"
		}},
		{"duplicate damage ID", func(a *Analysis) {
			a.AddDamage(&DamageScenario{
				ID: "DS-01", Impacts: map[ImpactCategory]ImpactRating{CategorySafety: ImpactModerate},
			})
		}},
		{"duplicate threat ID", func(a *Analysis) {
			dup := *a.Threats[0]
			a.AddThreat(&dup)
		}},
		{"duplicate asset ID", func(a *Analysis) {
			a.Item.Assets = append(a.Item.Assets, &Asset{
				ID: "ECM-FW", Name: "clone",
				Properties: []SecurityProperty{PropertyIntegrity},
			})
		}},
		{"missing model", func(a *Analysis) { a.Matrix = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := ecmAnalysis()
			tt.mutate(a)
			if err := a.Validate(); err == nil {
				t.Error("Validate() succeeded, want error")
			}
		})
	}
}

func TestAnalysisRunECMExample(t *testing.T) {
	results, err := ecmAnalysis().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("Run() returned %d results, want 2", len(results))
	}
	byID := map[string]*ThreatResult{}
	for _, r := range results {
		byID[r.Threat.ID] = r
	}

	reprog := byID["TS-01"]
	if reprog == nil {
		t.Fatal("no result for TS-01")
	}
	// Impact: DS-01 overall = max(Moderate, Major, Moderate) = Major.
	if reprog.Impact != ImpactMajor {
		t.Errorf("TS-01 impact = %v, want Major", reprog.Impact)
	}
	// Feasibility: the path's dominant vector is Physical → Very Low
	// under the static G.9 table. This is exactly the misleading score
	// the paper criticizes: a common insider attack rated Very Low.
	if reprog.Feasibility != FeasibilityVeryLow {
		t.Errorf("TS-01 feasibility = %v, want Very Low under static G.9", reprog.Feasibility)
	}
	if reprog.DominantVector != VectorPhysical {
		t.Errorf("TS-01 dominant vector = %v, want Physical", reprog.DominantVector)
	}
	// Risk: Major × Very Low = R1 → Retain.
	if reprog.Risk != 1 || reprog.Treatment != TreatmentRetain {
		t.Errorf("TS-01 risk/treatment = %s/%v, want R1/Retain", reprog.Risk, reprog.Treatment)
	}
	// CAL: Major × Physical = CAL1.
	if reprog.CAL != CAL1 {
		t.Errorf("TS-01 CAL = %s, want CAL1", reprog.CAL)
	}

	dos := byID["TS-02"]
	if dos == nil {
		t.Fatal("no result for TS-02")
	}
	// No analyzed path: falls back to the declared physical vector.
	if dos.Impact != ImpactSevere || dos.Feasibility != FeasibilityVeryLow {
		t.Errorf("TS-02 impact/feasibility = %v/%v, want Severe/Very Low", dos.Impact, dos.Feasibility)
	}
	// Severe × Physical caps at CAL2 — the paper's DoS ceiling argument.
	if dos.CAL != CAL2 {
		t.Errorf("TS-02 CAL = %s, want CAL2", dos.CAL)
	}
	// Results must be sorted by descending risk.
	if results[0].Risk < results[1].Risk {
		t.Errorf("results not sorted by risk: %s before %s", results[0].Risk, results[1].Risk)
	}
}

func TestAnalysisRunWithRetunedVectorModel(t *testing.T) {
	// Installing a PSP-style retuned table (physical → High) flips the
	// ECM-reprogramming verdict from R1 to R4 — the framework's point.
	a := ecmAnalysis()
	retuned, err := NewVectorTable("PSP insider", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh,
		VectorLocal:    FeasibilityMedium,
		VectorAdjacent: FeasibilityLow,
		VectorNetwork:  FeasibilityVeryLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.VectorModel = retuned
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Threat.ID != "TS-01" {
			continue
		}
		if r.Feasibility != FeasibilityHigh {
			t.Errorf("retuned TS-01 feasibility = %v, want High", r.Feasibility)
		}
		if r.Risk != 4 {
			t.Errorf("retuned TS-01 risk = %s, want R4", r.Risk)
		}
	}
}

func TestAnalysisRunPotentialPath(t *testing.T) {
	a := ecmAnalysis()
	a.AddPath(&AttackPath{
		ID: "AP-02", ThreatID: "TS-02",
		Steps: []AttackStep{{
			Description: "splice into powertrain CAN with standard tools",
			Vector:      VectorPhysical,
			Potential: &AttackPotentialInput{
				Time: TimeOneDay, Expertise: ExpertiseProficient, Knowledge: KnowledgePublic,
				Window: WindowEasy, Equipment: EquipmentStandard,
			},
		}},
	})
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Threat.ID != "TS-02" {
			continue
		}
		// Potential 0+3+0+1+0 = 4 → High: the potential-based model
		// already disagrees with the vector-based Very Low, showing the
		// inconsistency across the standard's own models.
		if r.Feasibility != FeasibilityHigh {
			t.Errorf("TS-02 potential-based feasibility = %v, want High", r.Feasibility)
		}
		// Severe impact × High feasibility = R5 → Avoid.
		if r.Risk != 5 || r.Treatment != TreatmentAvoid {
			t.Errorf("TS-02 risk/treatment = %s/%v, want R5/Avoid", r.Risk, r.Treatment)
		}
	}
}

func TestIsInsider(t *testing.T) {
	tests := []struct {
		name     string
		profiles []AttackerProfile
		want     bool
	}{
		{"explicit insider", []AttackerProfile{ProfileInsider}, true},
		{"rational local", []AttackerProfile{ProfileRational, ProfileLocal}, true},
		{"rational only", []AttackerProfile{ProfileRational}, false},
		{"outsider", []AttackerProfile{ProfileOutsider, ProfileMalicious}, false},
		{"none", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := &ThreatScenario{Profiles: tt.profiles}
			if got := ts.IsInsider(); got != tt.want {
				t.Errorf("IsInsider() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDamageOverallImpactIsMax(t *testing.T) {
	d := &DamageScenario{
		ID: "DS-X",
		Impacts: map[ImpactCategory]ImpactRating{
			CategorySafety:    ImpactNegligible,
			CategoryFinancial: ImpactSevere,
			CategoryPrivacy:   ImpactModerate,
		},
	}
	if got := d.OverallImpact(); got != ImpactSevere {
		t.Errorf("OverallImpact() = %v, want Severe", got)
	}
	if got := d.Impact(CategoryOperational); got != 0 {
		t.Errorf("Impact(unrated category) = %v, want 0", got)
	}
}

func TestItemAssetLookup(t *testing.T) {
	a := ecmAnalysis()
	if got := a.Item.Asset("ECM-FW"); got == nil || got.Name != "ECM firmware" {
		t.Errorf("Asset(ECM-FW) = %+v, want ECM firmware", got)
	}
	if got := a.Item.Asset("NOPE"); got != nil {
		t.Errorf("Asset(NOPE) = %+v, want nil", got)
	}
	if !a.Item.Assets[0].HasProperty(PropertyIntegrity) {
		t.Error("ECM-FW should have integrity property")
	}
	if a.Item.Assets[0].HasProperty(PropertyConfidentiality) {
		t.Error("ECM-FW should not have confidentiality property")
	}
}
