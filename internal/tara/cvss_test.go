package tara

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExploitabilityKnownScores(t *testing.T) {
	tests := []struct {
		name string
		in   CVSSInput
		want float64
	}{
		{
			name: "maximum exploitability (AV:N/AC:L/PR:N/UI:N)",
			in: CVSSInput{Vector: VectorNetwork, Complexity: ComplexityLow,
				Privileges: PrivilegesNone, Interaction: InteractionNone},
			want: 8.22 * 0.85 * 0.77 * 0.85 * 0.85,
		},
		{
			name: "physical worst case (AV:P/AC:H/PR:H/UI:R)",
			in: CVSSInput{Vector: VectorPhysical, Complexity: ComplexityHigh,
				Privileges: PrivilegesHigh, Interaction: InteractionRequired},
			want: 8.22 * 0.20 * 0.44 * 0.27 * 0.62,
		},
		{
			name: "changed scope raises PR:L coefficient",
			in: CVSSInput{Vector: VectorLocal, Complexity: ComplexityLow,
				Privileges: PrivilegesLow, Interaction: InteractionNone, ChangedScope: true},
			want: 8.22 * 0.55 * 0.77 * 0.68 * 0.85,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Exploitability(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Exploitability() = %.6f, want %.6f", got, tt.want)
			}
		})
	}
}

func TestExploitabilityValidation(t *testing.T) {
	bad := []CVSSInput{
		{},
		{Vector: VectorNetwork},
		{Vector: VectorNetwork, Complexity: ComplexityLow},
		{Vector: VectorNetwork, Complexity: ComplexityLow, Privileges: PrivilegesNone},
		{Vector: AttackVector(9), Complexity: ComplexityLow, Privileges: PrivilegesNone, Interaction: InteractionNone},
	}
	for i, in := range bad {
		if _, err := Exploitability(in); err == nil {
			t.Errorf("case %d: Exploitability(%+v) succeeded, want error", i, in)
		}
	}
}

func TestRateCVSSBands(t *testing.T) {
	th := StandardCVSSThresholds()
	tests := []struct {
		name string
		in   CVSSInput
		want FeasibilityRating
	}{
		{
			// 8.22·0.85·0.77·0.85·0.85 ≈ 3.89 → High
			name: "remote unauthenticated rates High",
			in: CVSSInput{Vector: VectorNetwork, Complexity: ComplexityLow,
				Privileges: PrivilegesNone, Interaction: InteractionNone},
			want: FeasibilityHigh,
		},
		{
			// 8.22·0.20·0.44·0.27·0.62 ≈ 0.12 → Very Low
			name: "constrained physical rates Very Low",
			in: CVSSInput{Vector: VectorPhysical, Complexity: ComplexityHigh,
				Privileges: PrivilegesHigh, Interaction: InteractionRequired},
			want: FeasibilityVeryLow,
		},
		{
			// 8.22·0.55·0.77·0.85·0.85 ≈ 2.52 → Medium
			name: "local unauthenticated rates Medium",
			in: CVSSInput{Vector: VectorLocal, Complexity: ComplexityLow,
				Privileges: PrivilegesNone, Interaction: InteractionNone},
			want: FeasibilityMedium,
		},
		{
			// 8.22·0.20·0.77·0.85·0.85 ≈ 0.91 → Very Low: CVSS shares the
			// G.9 bias against physical attacks the paper criticizes.
			name: "easy physical still rates Very Low",
			in: CVSSInput{Vector: VectorPhysical, Complexity: ComplexityLow,
				Privileges: PrivilegesNone, Interaction: InteractionNone},
			want: FeasibilityVeryLow,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RateCVSS(th, tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("RateCVSS() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCVSSThresholdValidation(t *testing.T) {
	bad := []CVSSThresholds{
		{VeryLowMax: 0, LowMax: 1, MediumMax: 2},
		{VeryLowMax: 2, LowMax: 1, MediumMax: 3},
		{VeryLowMax: 1, LowMax: 2, MediumMax: 2},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) succeeded, want error", i, th)
		}
	}
	if err := StandardCVSSThresholds().Validate(); err != nil {
		t.Errorf("standard thresholds invalid: %v", err)
	}
}

// Property: exploitability is always in (0, 3.9] for valid inputs, and a
// network vector never scores below the same metrics with a physical
// vector.
func TestExploitabilityBoundsProperty(t *testing.T) {
	f := func(c, p, u, s uint8) bool {
		in := CVSSInput{
			Complexity:   ComplexityLow + AttackComplexity(c%2),
			Privileges:   PrivilegesNone + PrivilegesRequired(p%3),
			Interaction:  InteractionNone + UserInteraction(u%2),
			ChangedScope: s%2 == 0,
		}
		inNet, inPhy := in, in
		inNet.Vector = VectorNetwork
		inPhy.Vector = VectorPhysical
		en, err := Exploitability(inNet)
		if err != nil {
			return false
		}
		ep, err := Exploitability(inPhy)
		if err != nil {
			return false
		}
		return en > 0 && en <= 3.9 && ep > 0 && ep <= 3.9 && en >= ep
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
