package tara

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a multi-tenant collection of named TARA analyses — the
// vehicle variants of a product line, each a full Analysis, typically
// sharing one framework (keyword DB, SAI) for social tuning. Mutations
// go through Tenant.Mutate, which bumps the tenant's version and marks
// it dirty; a rating loop drains TakeDirty and publishes immutable
// TenantAssessment snapshots readable without locks.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
	dirty   map[string]bool
	// notify signals "some tenant is dirty" with a coalescing capacity-1
	// channel, like the store changefeed's subscriber notification.
	notify chan struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		tenants: make(map[string]*Tenant),
		dirty:   make(map[string]bool),
		notify:  make(chan struct{}, 1),
	}
}

// Create registers a new tenant around the analysis, validates it, and
// marks it dirty so the rating loop picks it up. The name must be
// non-empty and unused.
func (r *Registry) Create(name string, a *Analysis) (*Tenant, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("tara: tenant with empty name")
	}
	if a == nil {
		return nil, fmt.Errorf("tara: tenant %s without analysis", name)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("tara: tenant %s: %w", name, err)
	}
	t := &Tenant{name: name, reg: r, a: a, version: 1}
	r.mu.Lock()
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("tara: duplicate tenant %s", name)
	}
	r.tenants[name] = t
	r.dirty[name] = true
	r.mu.Unlock()
	r.wake()
	return t, nil
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	t, ok := r.tenants[name]
	r.mu.RUnlock()
	return t, ok
}

// Names returns all tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Remove deletes a tenant, reporting whether it existed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	_, ok := r.tenants[name]
	delete(r.tenants, name)
	delete(r.dirty, name)
	r.mu.Unlock()
	return ok
}

// Notify returns the dirty-tenant signal channel: it receives (with
// coalescing) whenever at least one tenant becomes dirty.
func (r *Registry) Notify() <-chan struct{} { return r.notify }

// TakeDirty drains and returns the dirty tenant names, sorted.
func (r *Registry) TakeDirty() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.dirty))
	for name := range r.dirty {
		out = append(out, name)
	}
	r.dirty = make(map[string]bool)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// MarkDirty flags a tenant for re-rating (used by rating loops to
// requeue a tenant after a failed pass).
func (r *Registry) MarkDirty(name string) {
	r.mu.Lock()
	if _, ok := r.tenants[name]; ok {
		r.dirty[name] = true
	}
	r.mu.Unlock()
	r.wake()
}

func (r *Registry) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// RegistryStats is a typed snapshot of the registry's observability
// counters — the programmatic stats surface backing /v1/metrics and the
// facade, replacing one-off test hooks.
type RegistryStats struct {
	// Tenants is the tenant count; DirtyTenants how many await re-rating.
	Tenants      int
	DirtyTenants int
	// RatingCalls sums every tenant's cumulative engine rating-call
	// counter (Analysis.RatingCalls) — the incrementality measure: it
	// grows by the dirty threats of each pass, not the model size.
	RatingCalls uint64
	// Generations sums published assessment generations; RatedThreats
	// and TotalThreats sum the latest assessments' per-pass re-rate
	// count and model size (RatedThreats < TotalThreats demonstrates
	// incremental rating fleet-wide).
	Generations  uint64
	RatedThreats int
	TotalThreats int
}

// Stats snapshots the registry. It takes each tenant's lock briefly to
// read the engine counter; assessments are read lock-free.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	dirty := len(r.dirty)
	r.mu.RUnlock()
	st := RegistryStats{Tenants: len(tenants), DirtyTenants: dirty}
	for _, t := range tenants {
		st.RatingCalls += t.RatingCalls()
		if cur := t.Assessment(); cur != nil {
			st.Generations += cur.Generation
			st.RatedThreats += cur.RatedThreats
			st.TotalThreats += cur.TotalThreats
		}
	}
	return st
}

// Tenant is one named analysis of the registry. The analysis must only
// be touched through Mutate and Rate, which serialize access under the
// tenant lock; published assessments are read lock-free.
type Tenant struct {
	name string
	reg  *Registry

	mu sync.Mutex
	a  *Analysis
	// version counts successful mutation batches; it is the optimistic
	// concurrency token of the mutation API.
	version uint64

	cur atomic.Pointer[TenantAssessment]
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Version returns the current model version.
func (t *Tenant) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Assessment returns the last published assessment, or nil before the
// first rating pass.
func (t *Tenant) Assessment() *TenantAssessment { return t.cur.Load() }

// RatingCalls returns the tenant's live cumulative engine rating-call
// count (the published assessment carries the value frozen at its
// rating pass).
func (t *Tenant) RatingCalls() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.a.RatingCalls()
}

// Mutate runs fn against the tenant's analysis under the tenant lock.
// fn reports whether it changed the model; when it did — or when it
// failed partway, since applied prefixes stay in effect — the version is
// bumped and the tenant is marked dirty for re-rating. Returns the
// resulting version.
func (t *Tenant) Mutate(fn func(a *Analysis) (changed bool, err error)) (uint64, error) {
	t.mu.Lock()
	changed, err := fn(t.a)
	if changed || err != nil {
		t.version++
	}
	v := t.version
	t.mu.Unlock()
	if changed || err != nil {
		t.reg.MarkDirty(t.name)
	}
	return v, err
}

// MutateAt is Mutate guarded by an expected version: when expect is
// non-zero and does not match the current version, ErrVersionMismatch is
// returned and fn does not run.
func (t *Tenant) MutateAt(expect uint64, fn func(a *Analysis) (bool, error)) (uint64, error) {
	t.mu.Lock()
	if expect != 0 && expect != t.version {
		v := t.version
		t.mu.Unlock()
		return v, fmt.Errorf("%w: tenant %s at version %d, expected %d", ErrVersionMismatch, t.name, v, expect)
	}
	changed, err := fn(t.a)
	if changed || err != nil {
		t.version++
	}
	v := t.version
	t.mu.Unlock()
	if changed || err != nil {
		t.reg.MarkDirty(t.name)
	}
	return v, err
}

// ErrVersionMismatch reports an optimistic-concurrency conflict in
// MutateAt.
var ErrVersionMismatch = fmt.Errorf("tara: tenant version mismatch")

// Rate plans a rating pass over the tenant's analysis, delegates the
// dirty threats to the rate callback (which may fan out, but must
// return Commit's result), and publishes the new assessment snapshot.
// The concept derivation rides along when there are results to derive
// from.
func (t *Tenant) Rate(now time.Time, rate func(p *Plan) ([]*ThreatResult, error)) (*TenantAssessment, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	version := t.version
	p, err := t.a.Plan()
	if err != nil {
		return nil, err
	}
	dirty := len(p.Dirty)
	// Nothing dirty at an already-published version: the previous
	// assessment is still exact, so keep it (stable generation, stable
	// ETag) instead of churning out an identical snapshot.
	if prev := t.cur.Load(); prev != nil && dirty == 0 && prev.Version == version {
		return prev, nil
	}
	results, err := rate(p)
	if err != nil {
		return nil, err
	}
	var concept *ConceptOutcome
	if len(results) > 0 {
		concept, err = DeriveConcept(results)
		if err != nil {
			return nil, err
		}
	}
	var gen uint64 = 1
	if prev := t.cur.Load(); prev != nil {
		gen = prev.Generation + 1
	}
	cur := &TenantAssessment{
		Tenant:       t.name,
		Version:      version,
		Generation:   gen,
		UpdatedAt:    now,
		Results:      results,
		Concept:      concept,
		RatedThreats: dirty,
		TotalThreats: len(results),
		RatingCalls:  t.a.RatingCalls(),
	}
	t.cur.Store(cur)
	return cur, nil
}

// TenantAssessment is an immutable published rating of one tenant.
type TenantAssessment struct {
	// Tenant is the tenant name.
	Tenant string
	// Version is the model version this assessment rates.
	Version uint64
	// Generation counts publications for this tenant.
	Generation uint64
	// UpdatedAt is the publication time.
	UpdatedAt time.Time
	// Results is the full, sorted risk determination.
	Results []*ThreatResult
	// Concept is the §9.4 derivation (nil when there are no results).
	Concept *ConceptOutcome
	// RatedThreats is how many threats were actually re-rated in the
	// pass that produced this assessment; TotalThreats is the model
	// size. RatedThreats < TotalThreats demonstrates incrementality.
	RatedThreats int
	TotalThreats int
	// RatingCalls is the tenant's cumulative rating-call counter at
	// publication time — the observability hook of the acceptance
	// criterion that only dirty threats are re-rated.
	RatingCalls uint64
}
