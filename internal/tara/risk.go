package tara

import "fmt"

// RiskValue is the risk level of ISO/SAE 21434 §15.8, an integer between
// 1 (lowest) and 5 (highest). The zero value means "not determined".
type RiskValue int

// Risk value bounds.
const (
	RiskMin RiskValue = 1
	RiskMax RiskValue = 5
)

// Valid reports whether v lies in the defined 1..5 range.
func (v RiskValue) Valid() bool { return v >= RiskMin && v <= RiskMax }

// String renders the value as "R1".."R5".
func (v RiskValue) String() string {
	if !v.Valid() {
		return fmt.Sprintf("RiskValue(%d)", int(v))
	}
	return fmt.Sprintf("R%d", int(v))
}

// TreatmentOption is a risk treatment decision of ISO/SAE 21434 §15.9.
type TreatmentOption int

// Treatment options.
const (
	TreatmentAvoid TreatmentOption = iota + 1
	TreatmentReduce
	TreatmentShare
	TreatmentRetain
)

var treatmentNames = map[TreatmentOption]string{
	TreatmentAvoid:  "Avoid",
	TreatmentReduce: "Reduce",
	TreatmentShare:  "Share",
	TreatmentRetain: "Retain",
}

// String returns the treatment option name.
func (t TreatmentOption) String() string {
	if s, ok := treatmentNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TreatmentOption(%d)", int(t))
}

// Valid reports whether t is a defined treatment option.
func (t TreatmentOption) Valid() bool {
	return t >= TreatmentAvoid && t <= TreatmentRetain
}

// RiskMatrix determines the risk value from an impact rating and an
// attack feasibility rating (§15.8). The standard provides an informative
// example matrix; organizations may define their own, which is why the
// matrix is a value and not a fixed function.
type RiskMatrix struct {
	Name string

	cells map[ImpactRating]map[FeasibilityRating]RiskValue
}

// StandardRiskMatrix returns the informative example matrix of
// ISO/SAE 21434 Annex H:
//
//	              Very Low  Low  Medium  High
//	Severe            2      3     4      5
//	Major             1      2     3      4
//	Moderate          1      2     2      3
//	Negligible        1      1     1      1
func StandardRiskMatrix() *RiskMatrix {
	return &RiskMatrix{
		Name: "ISO/SAE 21434 Annex H (risk matrix)",
		cells: map[ImpactRating]map[FeasibilityRating]RiskValue{
			ImpactSevere: {
				FeasibilityVeryLow: 2, FeasibilityLow: 3, FeasibilityMedium: 4, FeasibilityHigh: 5,
			},
			ImpactMajor: {
				FeasibilityVeryLow: 1, FeasibilityLow: 2, FeasibilityMedium: 3, FeasibilityHigh: 4,
			},
			ImpactModerate: {
				FeasibilityVeryLow: 1, FeasibilityLow: 2, FeasibilityMedium: 2, FeasibilityHigh: 3,
			},
			ImpactNegligible: {
				FeasibilityVeryLow: 1, FeasibilityLow: 1, FeasibilityMedium: 1, FeasibilityHigh: 1,
			},
		},
	}
}

// NewRiskMatrix builds a custom matrix. Every impact × feasibility cell
// must be present, valid, and monotone: risk must not decrease as either
// impact or feasibility increases.
func NewRiskMatrix(name string, cells map[ImpactRating]map[FeasibilityRating]RiskValue) (*RiskMatrix, error) {
	impacts := []ImpactRating{ImpactNegligible, ImpactModerate, ImpactMajor, ImpactSevere}
	feas := []FeasibilityRating{FeasibilityVeryLow, FeasibilityLow, FeasibilityMedium, FeasibilityHigh}
	cp := make(map[ImpactRating]map[FeasibilityRating]RiskValue, len(impacts))
	for _, imp := range impacts {
		row, ok := cells[imp]
		if !ok {
			return nil, fmt.Errorf("tara: risk matrix %q: missing impact row %s", name, imp)
		}
		cpRow := make(map[FeasibilityRating]RiskValue, len(feas))
		for _, f := range feas {
			v, ok := row[f]
			if !ok {
				return nil, fmt.Errorf("tara: risk matrix %q: missing cell %s × %s", name, imp, f)
			}
			if !v.Valid() {
				return nil, fmt.Errorf("tara: risk matrix %q: invalid risk value %d at %s × %s", name, int(v), imp, f)
			}
			cpRow[f] = v
		}
		cp[imp] = cpRow
	}
	// Monotonicity along feasibility within each impact row.
	for _, imp := range impacts {
		for i := 1; i < len(feas); i++ {
			if cp[imp][feas[i]] < cp[imp][feas[i-1]] {
				return nil, fmt.Errorf("tara: risk matrix %q: risk decreases from %s to %s at impact %s",
					name, feas[i-1], feas[i], imp)
			}
		}
	}
	// Monotonicity along impact within each feasibility column.
	for _, f := range feas {
		for i := 1; i < len(impacts); i++ {
			if cp[impacts[i]][f] < cp[impacts[i-1]][f] {
				return nil, fmt.Errorf("tara: risk matrix %q: risk decreases from %s to %s at feasibility %s",
					name, impacts[i-1], impacts[i], f)
			}
		}
	}
	return &RiskMatrix{Name: name, cells: cp}, nil
}

// Risk returns the risk value for the given impact and feasibility.
func (m *RiskMatrix) Risk(impact ImpactRating, feasibility FeasibilityRating) (RiskValue, error) {
	if !impact.Valid() {
		return 0, fmt.Errorf("tara: risk determination: invalid impact rating %d", int(impact))
	}
	if !feasibility.Valid() {
		return 0, fmt.Errorf("tara: risk determination: invalid feasibility rating %d", int(feasibility))
	}
	return m.cells[impact][feasibility], nil
}

// SuggestTreatment maps a risk value onto a default treatment decision:
// R1 → Retain, R2–R3 → Reduce, R4 → Share (e.g. contractual cascading
// along the supply chain) in addition to reduction, R5 → Avoid. The
// suggestion is a starting point for the analyst, not a verdict.
func SuggestTreatment(v RiskValue) (TreatmentOption, error) {
	switch v {
	case 1:
		return TreatmentRetain, nil
	case 2, 3:
		return TreatmentReduce, nil
	case 4:
		return TreatmentShare, nil
	case 5:
		return TreatmentAvoid, nil
	}
	return 0, fmt.Errorf("tara: cannot suggest treatment for invalid risk value %d", int(v))
}
