package tara

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// resultsEqual compares two result sets by value (not pointer).
func resultsEqual(a, b []*ThreatResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(*a[i], *b[i]) {
			return false
		}
	}
	return true
}

// mustRun runs the analysis, failing the test on error.
func mustRun(t *testing.T, a *Analysis) []*ThreatResult {
	t.Helper()
	res, err := a.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestIncrementalRunReusesCleanResults(t *testing.T) {
	a := ecmAnalysis()
	first := mustRun(t, a)
	if got := a.RatingCalls(); got != 2 {
		t.Fatalf("cold run rating calls = %d, want 2", got)
	}

	// A second run without mutations rates nothing and returns the
	// memoized results pointer-identically.
	second := mustRun(t, a)
	if got := a.RatingCalls(); got != 2 {
		t.Fatalf("no-op rerun rating calls = %d, want 2", got)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("result %d not reused pointer-identically", i)
		}
	}

	// Mutating TS-02's subgraph re-rates only TS-02.
	if err := a.UpsertPath(&AttackPath{
		ID: "AP-02", ThreatID: "TS-02",
		Steps: []AttackStep{{Description: "splice into CAN-PT", Vector: VectorPhysical}},
	}); err != nil {
		t.Fatalf("UpsertPath: %v", err)
	}
	third := mustRun(t, a)
	if got := a.RatingCalls(); got != 3 {
		t.Fatalf("delta rerun rating calls = %d, want 3", got)
	}
	cold := mustRun(t, a.Clone())
	if !resultsEqual(third, cold) {
		t.Fatalf("incremental results diverge from cold run:\n inc=%+v\ncold=%+v", third[0], cold[0])
	}
	// TS-01 was clean: its result must be the same pointer as before.
	for _, r := range third {
		if r.Threat.ID == "TS-01" {
			for _, prev := range second {
				if prev.Threat.ID == "TS-01" && prev != r {
					t.Fatal("clean threat TS-01 was re-rated")
				}
			}
		}
	}
}

func TestDirtyPropagation(t *testing.T) {
	a := ecmAnalysis()
	mustRun(t, a)
	base := a.RatingCalls()

	// Damage mutation dirties only threats linking it.
	if err := a.UpsertDamage(&DamageScenario{
		ID: "DS-02", Description: "worse torque loss", AssetIDs: []string{"ECM-CAN"},
		Impacts: map[ImpactCategory]ImpactRating{CategorySafety: ImpactSevere, CategoryOperational: ImpactMajor},
	}); err != nil {
		t.Fatalf("UpsertDamage: %v", err)
	}
	mustRun(t, a)
	if got := a.RatingCalls() - base; got != 1 {
		t.Fatalf("damage mutation re-rated %d threats, want 1", got)
	}

	// Asset mutation dirties threats referencing it directly or via a
	// damage scenario.
	base = a.RatingCalls()
	if err := a.UpsertAsset(&Asset{
		ID: "ECM-FW", Name: "ECM firmware v2",
		Properties: []SecurityProperty{PropertyIntegrity},
		ECU:        "ECM",
	}); err != nil {
		t.Fatalf("UpsertAsset: %v", err)
	}
	mustRun(t, a)
	if got := a.RatingCalls() - base; got != 1 {
		t.Fatalf("asset mutation re-rated %d threats, want 1 (TS-01 only)", got)
	}

	// Model swap dirties everything.
	base = a.RatingCalls()
	if err := a.SetMatrix(StandardRiskMatrix()); err != nil {
		t.Fatalf("SetMatrix: %v", err)
	}
	mustRun(t, a)
	if got := a.RatingCalls() - base; got != 2 {
		t.Fatalf("model swap re-rated %d threats, want 2", got)
	}
}

func TestDirectFieldMutationDetected(t *testing.T) {
	a := ecmAnalysis()
	first := mustRun(t, a)

	// Legacy pattern: assign a model field directly, as cmd/psp does
	// with PSP-tuned tables.
	tuned, err := NewVectorTable("tuned", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh, VectorLocal: FeasibilityHigh,
		VectorAdjacent: FeasibilityHigh, VectorNetwork: FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.VectorModel = tuned
	second := mustRun(t, a)
	if resultsEqual(first, second) {
		t.Fatal("vector model swap had no effect on results")
	}
	cold := mustRun(t, a.Clone())
	if !resultsEqual(second, cold) {
		t.Fatal("results after model swap diverge from cold run")
	}

	// Legacy builder append after a run triggers a full rebuild.
	a.AddThreat(&ThreatScenario{
		ID: "TS-03", Name: "late addition", DamageIDs: []string{"DS-01"},
		Property: PropertyIntegrity, STRIDE: Tampering, Vector: VectorNetwork,
	})
	third := mustRun(t, a)
	if len(third) != 3 {
		t.Fatalf("got %d results after AddThreat, want 3", len(third))
	}
	if !resultsEqual(third, mustRun(t, a.Clone())) {
		t.Fatal("results after AddThreat diverge from cold run")
	}
}

func TestMutationEagerValidation(t *testing.T) {
	a := ecmAnalysis()
	before := mustRun(t, a)

	cases := []struct {
		name string
		op   func() error
	}{
		{"remove referenced asset", func() error { return a.RemoveAsset("ECM-FW") }},
		{"remove referenced damage", func() error { return a.RemoveDamage("DS-01") }},
		{"remove unknown threat", func() error { return a.RemoveThreat("TS-99") }},
		{"remove unknown path", func() error { return a.RemovePath("AP-99") }},
		{"upsert damage with unknown asset", func() error {
			return a.UpsertDamage(&DamageScenario{ID: "DS-03", AssetIDs: []string{"nope"},
				Impacts: map[ImpactCategory]ImpactRating{CategorySafety: ImpactMajor}})
		}},
		{"upsert threat with unknown damage", func() error {
			return a.UpsertThreat(&ThreatScenario{ID: "TS-03", Name: "x", DamageIDs: []string{"nope"},
				Property: PropertyIntegrity, STRIDE: Tampering, Vector: VectorLocal})
		}},
		{"upsert path with unknown threat", func() error {
			return a.UpsertPath(&AttackPath{ID: "AP-09", ThreatID: "nope",
				Steps: []AttackStep{{Vector: VectorLocal}}})
		}},
		{"upsert invalid asset", func() error { return a.UpsertAsset(&Asset{ID: "A", Name: ""}) }},
		{"set nil vector model", func() error { return a.SetVectorModel(nil) }},
		{"set table for unknown threat", func() error {
			_, err := a.SetThreatTable("TS-99", StandardVectorTable())
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.op(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Failed mutations leave the model and results untouched.
	after := mustRun(t, a)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("failed mutations invalidated result %d", i)
		}
	}
}

func TestRemoveThreatCascadesSubgraph(t *testing.T) {
	a := ecmAnalysis()
	mustRun(t, a)
	if err := a.RemoveThreat("TS-01"); err != nil {
		t.Fatalf("RemoveThreat: %v", err)
	}
	if len(a.Paths) != 0 {
		t.Fatalf("paths not cascaded: %d left", len(a.Paths))
	}
	res := mustRun(t, a)
	if len(res) != 1 || res[0].Threat.ID != "TS-02" {
		t.Fatalf("unexpected results after removal: %+v", res)
	}
	if !resultsEqual(res, mustRun(t, a.Clone())) {
		t.Fatal("results after threat removal diverge from cold run")
	}
}

func TestSetThreatTable(t *testing.T) {
	a := ecmAnalysis()
	mustRun(t, a)
	base := a.RatingCalls()

	hot, err := NewVectorTable("psp-tuned", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh, VectorLocal: FeasibilityHigh,
		VectorAdjacent: FeasibilityMedium, VectorNetwork: FeasibilityLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := a.SetThreatTable("TS-01", hot)
	if err != nil || !changed {
		t.Fatalf("SetThreatTable: changed=%v err=%v", changed, err)
	}
	res := mustRun(t, a)
	if got := a.RatingCalls() - base; got != 1 {
		t.Fatalf("table override re-rated %d threats, want 1", got)
	}
	if !resultsEqual(res, mustRun(t, a.Clone())) {
		t.Fatal("override results diverge from cold run")
	}

	// A rating-equal table is a no-op.
	same, err := NewVectorTable("same ratings, new name", hot.Ratings())
	if err != nil {
		t.Fatal(err)
	}
	changed, err = a.SetThreatTable("TS-01", same)
	if err != nil || changed {
		t.Fatalf("equal table: changed=%v err=%v, want false nil", changed, err)
	}
	base = a.RatingCalls()
	mustRun(t, a)
	if got := a.RatingCalls() - base; got != 0 {
		t.Fatalf("equal table re-rated %d threats, want 0", got)
	}

	// Clearing dirties the threat again.
	changed, err = a.SetThreatTable("TS-01", nil)
	if err != nil || !changed {
		t.Fatalf("clear: changed=%v err=%v", changed, err)
	}
	res = mustRun(t, a)
	if !resultsEqual(res, mustRun(t, a.Clone())) {
		t.Fatal("cleared-override results diverge from cold run")
	}
}

func TestApplyOpsPrefixSemantics(t *testing.T) {
	a := ecmAnalysis()
	mustRun(t, a)
	ops := []Op{
		{Kind: OpUpsertDamage, Damage: &DamageScenario{
			ID: "DS-03", AssetIDs: []string{"ECM-FW"},
			Impacts: map[ImpactCategory]ImpactRating{CategoryPrivacy: ImpactModerate},
		}},
		{Kind: OpRemoveAsset, ID: "ECM-FW"}, // fails: referenced
		{Kind: OpRemoveDamage, ID: "DS-03"}, // never applied
	}
	applied, err := ApplyOps(a, ops)
	if err == nil || applied != 1 {
		t.Fatalf("applied=%d err=%v, want 1 and an error", applied, err)
	}
	if a.Damage("DS-03") == nil {
		t.Fatal("applied prefix was rolled back")
	}
	if !resultsEqual(mustRun(t, a), mustRun(t, a.Clone())) {
		t.Fatal("post-prefix results diverge from cold run")
	}
}

func TestOpsJSONRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpUpsertAsset, Asset: &Asset{ID: "A-1", Name: "a",
			Properties: []SecurityProperty{PropertyIntegrity}}},
		{Kind: OpUpsertThreat, Threat: &ThreatScenario{ID: "TS-09", Name: "t",
			DamageIDs: []string{"DS-01"}, Property: PropertyIntegrity,
			STRIDE: Tampering, Vector: VectorNetwork}},
		{Kind: OpRemovePath, ID: "AP-01"},
		{Kind: OpSetThreatTable, ID: "TS-01", Table: StandardVectorTable()},
	}
	buf, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOps(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("got %d ops back, want %d", len(back), len(ops))
	}
	if back[0].Asset.ID != "A-1" || back[1].Threat.STRIDE != Tampering ||
		back[2].ID != "AP-01" || !back[3].Table.Equal(StandardVectorTable()) {
		t.Fatalf("round trip mangled ops: %+v", back)
	}
}

func TestThreatTablesJSONRoundTrip(t *testing.T) {
	a := ecmAnalysis()
	hot, err := NewVectorTable("tuned", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh, VectorLocal: FeasibilityHigh,
		VectorAdjacent: FeasibilityHigh, VectorNetwork: FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetThreatTable("TS-01", hot); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ThreatTables["TS-01"] == nil || !back.ThreatTables["TS-01"].Equal(hot) {
		t.Fatal("threat table override lost in round trip")
	}
	if !resultsEqual(mustRun(t, a), mustRun(t, back)) {
		t.Fatal("round-tripped analysis rates differently")
	}
}

func TestGenerateAnalysisDeterministic(t *testing.T) {
	spec := GenSpec{Assets: 20, Damages: 30, Threats: 40, PathsPerThreat: 2, Seed: 7}
	a, err := GenerateAnalysis(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAnalysis(spec)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := mustRun(t, a), mustRun(t, b)
	if !resultsEqual(ra, rb) {
		t.Fatal("same spec generated different models")
	}
	var wa, wb bytes.Buffer
	if err := a.WriteJSON(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("same spec serialized differently")
	}
}

func TestRegistryTenantLifecycle(t *testing.T) {
	reg := NewRegistry()
	ten, err := reg.Create("ecm", ecmAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("ecm", ecmAnalysis()); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := reg.Create("", ecmAnalysis()); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	select {
	case <-reg.Notify():
	default:
		t.Fatal("create did not notify")
	}
	if got := reg.TakeDirty(); len(got) != 1 || got[0] != "ecm" {
		t.Fatalf("TakeDirty = %v", got)
	}

	// Sequential rating pass.
	now := time.Unix(100, 0)
	cur, err := ten.Rate(now, func(p *Plan) ([]*ThreatResult, error) {
		rated := make([]*ThreatResult, len(p.Dirty))
		for i, id := range p.Dirty {
			r, err := p.Rate(id)
			if err != nil {
				return nil, err
			}
			rated[i] = r
		}
		return p.Commit(rated)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 1 || cur.Generation != 1 || cur.RatedThreats != 2 || cur.TotalThreats != 2 {
		t.Fatalf("assessment %+v", cur)
	}
	if ten.Assessment() != cur {
		t.Fatal("Assessment() is not the published snapshot")
	}
	if cur.Concept == nil || len(cur.Concept.Goals)+len(cur.Concept.Claims) == 0 {
		t.Fatal("concept derivation missing")
	}

	// Versioned mutation.
	v, err := ten.MutateAt(1, func(a *Analysis) (bool, error) {
		return true, a.RemovePath("AP-01")
	})
	if err != nil || v != 2 {
		t.Fatalf("MutateAt: v=%d err=%v", v, err)
	}
	if _, err := ten.MutateAt(1, func(a *Analysis) (bool, error) { return true, nil }); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale MutateAt error = %v, want ErrVersionMismatch", err)
	}
	if got := reg.TakeDirty(); len(got) != 1 || got[0] != "ecm" {
		t.Fatalf("TakeDirty after mutation = %v", got)
	}

	if !reg.Remove("ecm") || reg.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestValidateStillCatchesInPlaceCorruption(t *testing.T) {
	a := ecmAnalysis()
	mustRun(t, a)
	a.Threats[0].Vector = AttackVector(99)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "invalid attack vector") {
		t.Fatalf("Validate after in-place corruption = %v", err)
	}
}
