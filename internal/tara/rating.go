package tara

import (
	"fmt"
	"strings"
)

// FeasibilityRating is the attack feasibility rating scale of
// ISO/SAE 21434 §15.7 (Very Low, Low, Medium, High). The zero value means
// "unrated".
type FeasibilityRating int

// Feasibility ratings, ordered from least to most feasible.
const (
	FeasibilityVeryLow FeasibilityRating = iota + 1
	FeasibilityLow
	FeasibilityMedium
	FeasibilityHigh
)

var feasibilityNames = map[FeasibilityRating]string{
	FeasibilityVeryLow: "Very Low",
	FeasibilityLow:     "Low",
	FeasibilityMedium:  "Medium",
	FeasibilityHigh:    "High",
}

// String returns the human-readable rating name used by the standard.
func (r FeasibilityRating) String() string {
	if s, ok := feasibilityNames[r]; ok {
		return s
	}
	return fmt.Sprintf("FeasibilityRating(%d)", int(r))
}

// Valid reports whether r is one of the four defined ratings.
func (r FeasibilityRating) Valid() bool {
	return r >= FeasibilityVeryLow && r <= FeasibilityHigh
}

// Level returns the ordinal level 1..4 (Very Low = 1), or 0 if unrated.
func (r FeasibilityRating) Level() int {
	if !r.Valid() {
		return 0
	}
	return int(r)
}

// ParseFeasibility converts a rating name ("very low", "High", "medium",
// ...) into a FeasibilityRating. Matching is case-insensitive and tolerant
// of underscores and hyphens.
func ParseFeasibility(s string) (FeasibilityRating, error) {
	switch normalizeName(s) {
	case "very low", "verylow", "vl":
		return FeasibilityVeryLow, nil
	case "low", "l":
		return FeasibilityLow, nil
	case "medium", "med", "m":
		return FeasibilityMedium, nil
	case "high", "h":
		return FeasibilityHigh, nil
	}
	return 0, fmt.Errorf("tara: unknown feasibility rating %q", s)
}

// ImpactRating is the impact rating scale of ISO/SAE 21434 §15.5
// (Negligible, Moderate, Major, Severe). The zero value means "unrated".
type ImpactRating int

// Impact ratings, ordered from least to most damaging.
const (
	ImpactNegligible ImpactRating = iota + 1
	ImpactModerate
	ImpactMajor
	ImpactSevere
)

var impactNames = map[ImpactRating]string{
	ImpactNegligible: "Negligible",
	ImpactModerate:   "Moderate",
	ImpactMajor:      "Major",
	ImpactSevere:     "Severe",
}

// String returns the human-readable rating name used by the standard.
func (r ImpactRating) String() string {
	if s, ok := impactNames[r]; ok {
		return s
	}
	return fmt.Sprintf("ImpactRating(%d)", int(r))
}

// Valid reports whether r is one of the four defined ratings.
func (r ImpactRating) Valid() bool {
	return r >= ImpactNegligible && r <= ImpactSevere
}

// Level returns the ordinal level 1..4 (Negligible = 1), or 0 if unrated.
func (r ImpactRating) Level() int {
	if !r.Valid() {
		return 0
	}
	return int(r)
}

// ParseImpact converts an impact name into an ImpactRating. Matching is
// case-insensitive and tolerant of underscores and hyphens.
func ParseImpact(s string) (ImpactRating, error) {
	switch normalizeName(s) {
	case "negligible", "neg":
		return ImpactNegligible, nil
	case "moderate", "mod":
		return ImpactModerate, nil
	case "major", "maj":
		return ImpactMajor, nil
	case "severe", "sev":
		return ImpactSevere, nil
	}
	return 0, fmt.Errorf("tara: unknown impact rating %q", s)
}

// normalizeName lower-cases s and collapses separators so that "Very_Low",
// "very-low" and "Very Low" compare equal.
func normalizeName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "_", " ")
	s = strings.ReplaceAll(s, "-", " ")
	return strings.Join(strings.Fields(s), " ")
}
