// Package tara implements the Threat Analysis and Risk Assessment (TARA)
// methods defined by Clause 15 of ISO/SAE 21434:2021 "Road vehicles —
// Cybersecurity engineering".
//
// The package provides the four TARA process activities referenced by the
// PSP paper — asset identification, threat scenario identification, impact
// rating and attack path analysis — together with the three attack
// feasibility models defined by the standard:
//
//   - the attack potential-based approach (elapsed time, specialist
//     expertise, knowledge of the item, window of opportunity and
//     equipment; Annex G.2, reproduced as Fig. 3 of the paper),
//   - the CVSS-based approach (exploitability metrics of CVSS v3.1), and
//   - the attack vector-based approach (Annex G.9, reproduced as Fig. 5).
//
// It also implements Cybersecurity Assurance Level (CAL) determination
// (Fig. 6) and the impact × feasibility risk matrix with risk treatment
// options.
//
// All tables carry the standard's fixed default weights but are
// constructible with custom values: the inflexibility of the defaults is
// precisely the limitation the PSP framework addresses, and package sai
// produces re-tuned replacements for them.
//
// # Incremental rating
//
// An Analysis is no longer a batch script: Run validates once, builds
// ID indexes, and rates through a dirty tracker, so only threats whose
// inputs changed since the previous Run are re-rated. Mutations go
// through the typed mutation surface (UpsertAsset, UpsertDamage,
// UpsertThreat, UpsertPath, RemovePath, SetThreatTable, ...), which
// marks exactly the dependent threats dirty — an asset edit dirties the
// threats referencing it, a feasibility-table override dirties one
// threat. Unchanged threats are served from a memo map as pointer-
// identical ThreatResults, which keeps re-runs byte-identical to a cold
// run (the property tests pin this at several pool sizes) while doing
// O(dirty) rating work. RatingCalls exposes the monotonic count of
// actual rating computations for tests and monitoring.
//
// Plan/Rate/Commit splits a Run for callers that schedule their own
// parallelism: Plan snapshots the dirty set, Rate(id) computes one
// threat (safe to call concurrently), and Commit merges rated results
// deterministically and clears the dirty marks. core.Framework.RunTARA
// drives this over the shared worker pool.
//
// # Multi-tenant registry
//
// A Registry hosts many independent assessments — one Tenant per item
// or ECU. Each tenant guards its Analysis behind a versioned mutation
// API: Mutate applies a function atomically and bumps the version;
// MutateAt additionally compares an expected version first and fails
// with ErrVersionMismatch, the optimistic-concurrency token the HTTP
// layer maps to 409. Rate publishes an immutable TenantAssessment
// snapshot behind an atomic pointer, so readers never block a rater.
// Ops (ApplyOps, DecodeOps) give mutations a JSON wire form for the
// /v1/tara API.
package tara
