// Package tara implements the Threat Analysis and Risk Assessment (TARA)
// methods defined by Clause 15 of ISO/SAE 21434:2021 "Road vehicles —
// Cybersecurity engineering".
//
// The package provides the four TARA process activities referenced by the
// PSP paper — asset identification, threat scenario identification, impact
// rating and attack path analysis — together with the three attack
// feasibility models defined by the standard:
//
//   - the attack potential-based approach (elapsed time, specialist
//     expertise, knowledge of the item, window of opportunity and
//     equipment; Annex G.2, reproduced as Fig. 3 of the paper),
//   - the CVSS-based approach (exploitability metrics of CVSS v3.1), and
//   - the attack vector-based approach (Annex G.9, reproduced as Fig. 5).
//
// It also implements Cybersecurity Assurance Level (CAL) determination
// (Fig. 6) and the impact × feasibility risk matrix with risk treatment
// options.
//
// All tables carry the standard's fixed default weights but are
// constructible with custom values: the inflexibility of the defaults is
// precisely the limitation the PSP framework addresses, and package sai
// produces re-tuned replacements for them.
package tara
