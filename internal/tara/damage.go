package tara

import (
	"fmt"
	"strings"
)

// ImpactCategory is one of the four damage dimensions of ISO/SAE 21434
// §15.5 (the "SFOP" categories).
type ImpactCategory int

// Impact categories.
const (
	CategorySafety ImpactCategory = iota + 1
	CategoryFinancial
	CategoryOperational
	CategoryPrivacy
)

var categoryNames = map[ImpactCategory]string{
	CategorySafety:      "Safety",
	CategoryFinancial:   "Financial",
	CategoryOperational: "Operational",
	CategoryPrivacy:     "Privacy",
}

// String returns the category name.
func (c ImpactCategory) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ImpactCategory(%d)", int(c))
}

// Valid reports whether c is a defined impact category.
func (c ImpactCategory) Valid() bool {
	return c >= CategorySafety && c <= CategoryPrivacy
}

// AllCategories returns the four impact categories in SFOP order.
func AllCategories() []ImpactCategory {
	return []ImpactCategory{CategorySafety, CategoryFinancial, CategoryOperational, CategoryPrivacy}
}

// DamageScenario describes the adverse consequence of compromising one or
// more assets, with a per-category impact rating.
type DamageScenario struct {
	// ID is a stable identifier unique within an analysis (e.g. "DS-01").
	ID string
	// Description is the damage narrative ("unintended full-torque
	// request while driving", ...).
	Description string
	// AssetIDs lists the assets whose compromise realizes the damage.
	AssetIDs []string
	// Impacts carries the rating per impact category. Categories may be
	// omitted; an omitted category contributes nothing to the overall
	// rating.
	Impacts map[ImpactCategory]ImpactRating
}

// Validate checks identifiers and rating validity.
func (d *DamageScenario) Validate() error {
	if strings.TrimSpace(d.ID) == "" {
		return fmt.Errorf("tara: damage scenario with empty ID")
	}
	if len(d.Impacts) == 0 {
		return fmt.Errorf("tara: damage scenario %s: no impact ratings", d.ID)
	}
	for c, r := range d.Impacts {
		if !c.Valid() {
			return fmt.Errorf("tara: damage scenario %s: invalid impact category %d", d.ID, int(c))
		}
		if !r.Valid() {
			return fmt.Errorf("tara: damage scenario %s: invalid %s impact rating %d", d.ID, c, int(r))
		}
	}
	return nil
}

// OverallImpact aggregates the per-category ratings into the scenario's
// overall impact. Per the standard's guidance the categories are not
// averaged: the overall rating is the maximum across categories, so a
// scenario that is Severe for safety stays Severe regardless of its
// financial rating.
func (d *DamageScenario) OverallImpact() ImpactRating {
	var maxRating ImpactRating
	for _, r := range d.Impacts {
		if r > maxRating {
			maxRating = r
		}
	}
	return maxRating
}

// Impact returns the rating for category c, or 0 if the category was not
// rated.
func (d *DamageScenario) Impact(c ImpactCategory) ImpactRating {
	return d.Impacts[c]
}
