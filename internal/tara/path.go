package tara

import (
	"fmt"
	"strings"
)

// AttackStep is one step of an attack path: an action on an intermediate
// element together with the feasibility profile of that action.
type AttackStep struct {
	// Description narrates the step ("gain OBD port access", "flash
	// modified calibration", ...).
	Description string
	// Vector is the attack vector exercised by this step.
	Vector AttackVector
	// Potential optionally carries the attack potential profile of the
	// step for the attack potential-based approach. Nil when the step is
	// rated by vector only.
	Potential *AttackPotentialInput
}

// AttackPath is an ordered sequence of steps realizing a threat scenario
// (§15.6). Feasibility of the whole path is governed by its hardest step.
type AttackPath struct {
	// ID is a stable identifier unique within an analysis (e.g. "AP-01").
	ID string
	// ThreatID links the path to the threat scenario it realizes.
	ThreatID string
	// Steps are the ordered attack steps. A path needs at least one.
	Steps []AttackStep
}

// Validate checks identifiers, step count and step vector validity.
func (p *AttackPath) Validate() error {
	if strings.TrimSpace(p.ID) == "" {
		return fmt.Errorf("tara: attack path with empty ID")
	}
	if strings.TrimSpace(p.ThreatID) == "" {
		return fmt.Errorf("tara: attack path %s: no threat scenario linked", p.ID)
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("tara: attack path %s: no steps", p.ID)
	}
	for i, s := range p.Steps {
		if !s.Vector.Valid() {
			return fmt.Errorf("tara: attack path %s step %d: invalid attack vector %d", p.ID, i, int(s.Vector))
		}
		if s.Potential != nil {
			if err := s.Potential.Validate(); err != nil {
				return fmt.Errorf("attack path %s step %d: %w", p.ID, i, err)
			}
		}
	}
	return nil
}

// DominantVector returns the vector of the path's most demanding step:
// the closest (lowest-valued) vector in the sequence, because an attacker
// must satisfy the tightest access requirement to complete the path.
func (p *AttackPath) DominantVector() AttackVector {
	dom := VectorNetwork
	for _, s := range p.Steps {
		if s.Vector < dom {
			dom = s.Vector
		}
	}
	return dom
}

// RateByVector rates the path with the attack vector-based approach:
// the rating of the dominant (closest) vector under the given table.
func (p *AttackPath) RateByVector(t *VectorTable) (FeasibilityRating, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return t.Rating(p.DominantVector())
}

// RateByPotential rates the path with the attack potential-based
// approach. Each step with a potential profile contributes its summed
// weight; the path potential is the maximum step potential (the hardest
// step gates the attack), mapped through the thresholds. It is an error
// if no step carries a potential profile.
func (p *AttackPath) RateByPotential(w *AttackPotentialWeights, th PotentialThresholds) (FeasibilityRating, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := th.Validate(); err != nil {
		return 0, err
	}
	maxPotential, rated := 0, false
	for i, s := range p.Steps {
		if s.Potential == nil {
			continue
		}
		v, err := w.Potential(*s.Potential)
		if err != nil {
			return 0, fmt.Errorf("attack path %s step %d: %w", p.ID, i, err)
		}
		if !rated || v > maxPotential {
			maxPotential, rated = v, true
		}
	}
	if !rated {
		return 0, fmt.Errorf("tara: attack path %s: no step carries an attack potential profile", p.ID)
	}
	return th.Rating(maxPotential), nil
}

// CombineFeasibility aggregates the ratings of several alternative paths
// realizing the same threat scenario: the scenario is as feasible as its
// easiest path (maximum rating). It is an error to pass no ratings.
func CombineFeasibility(ratings []FeasibilityRating) (FeasibilityRating, error) {
	if len(ratings) == 0 {
		return 0, fmt.Errorf("tara: no path ratings to combine")
	}
	var maxRating FeasibilityRating
	for _, r := range ratings {
		if !r.Valid() {
			return 0, fmt.Errorf("tara: cannot combine invalid feasibility rating %d", int(r))
		}
		if r > maxRating {
			maxRating = r
		}
	}
	return maxRating, nil
}
