package tara

import "testing"

func validPath() *AttackPath {
	return &AttackPath{
		ID:       "AP-01",
		ThreatID: "TS-01",
		Steps: []AttackStep{
			{Description: "access cabin OBD port", Vector: VectorLocal},
			{Description: "open ECU housing and connect to bench harness", Vector: VectorPhysical},
			{Description: "flash modified calibration", Vector: VectorPhysical},
		},
	}
}

func TestAttackPathValidate(t *testing.T) {
	if err := validPath().Validate(); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*AttackPath)
	}{
		{"empty ID", func(p *AttackPath) { p.ID = " " }},
		{"missing threat", func(p *AttackPath) { p.ThreatID = "" }},
		{"no steps", func(p *AttackPath) { p.Steps = nil }},
		{"invalid vector", func(p *AttackPath) { p.Steps[0].Vector = 0 }},
		{"invalid potential", func(p *AttackPath) {
			p.Steps[0].Potential = &AttackPotentialInput{}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validPath()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() succeeded, want error")
			}
		})
	}
}

func TestDominantVector(t *testing.T) {
	tests := []struct {
		name    string
		vectors []AttackVector
		want    AttackVector
	}{
		{"physical dominates", []AttackVector{VectorNetwork, VectorPhysical, VectorLocal}, VectorPhysical},
		{"local dominates remote", []AttackVector{VectorNetwork, VectorAdjacent, VectorLocal}, VectorLocal},
		{"single network step", []AttackVector{VectorNetwork}, VectorNetwork},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := &AttackPath{ID: "AP", ThreatID: "TS"}
			for _, v := range tt.vectors {
				p.Steps = append(p.Steps, AttackStep{Vector: v})
			}
			if got := p.DominantVector(); got != tt.want {
				t.Errorf("DominantVector() = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestRateByVectorUsesDominantStep(t *testing.T) {
	// A path that ends in a physical step rates Very Low under G.9 even
	// if it starts from the network — the tightest access requirement
	// gates the attack.
	p := &AttackPath{
		ID:       "AP-02",
		ThreatID: "TS-01",
		Steps: []AttackStep{
			{Description: "compromise telematics backend", Vector: VectorNetwork},
			{Description: "replace ECU hardware", Vector: VectorPhysical},
		},
	}
	got, err := p.RateByVector(StandardVectorTable())
	if err != nil {
		t.Fatal(err)
	}
	if got != FeasibilityVeryLow {
		t.Errorf("RateByVector() = %v, want Very Low", got)
	}
}

func TestRateByPotentialUsesHardestStep(t *testing.T) {
	easy := &AttackPotentialInput{
		Time: TimeOneDay, Expertise: ExpertiseLayman, Knowledge: KnowledgePublic,
		Window: WindowUnlimited, Equipment: EquipmentStandard,
	}
	hard := &AttackPotentialInput{
		Time: TimeBeyondSixMonths, Expertise: ExpertiseMultipleExperts,
		Knowledge: KnowledgeStrictlyConfidential, Window: WindowDifficult,
		Equipment: EquipmentMultipleBespoke,
	}
	p := &AttackPath{
		ID:       "AP-03",
		ThreatID: "TS-01",
		Steps: []AttackStep{
			{Description: "easy entry", Vector: VectorLocal, Potential: easy},
			{Description: "hard exploitation", Vector: VectorPhysical, Potential: hard},
		},
	}
	got, err := p.RateByPotential(StandardPotentialWeights(), StandardPotentialThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if got != FeasibilityVeryLow {
		t.Errorf("RateByPotential() = %v, want Very Low (hardest step gates)", got)
	}
}

func TestRateByPotentialRequiresProfile(t *testing.T) {
	p := validPath() // no step has a potential profile
	if _, err := p.RateByPotential(StandardPotentialWeights(), StandardPotentialThresholds()); err == nil {
		t.Error("RateByPotential without profiles succeeded, want error")
	}
}

func TestCombineFeasibility(t *testing.T) {
	got, err := CombineFeasibility([]FeasibilityRating{
		FeasibilityVeryLow, FeasibilityMedium, FeasibilityLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != FeasibilityMedium {
		t.Errorf("CombineFeasibility() = %v, want Medium (easiest path wins)", got)
	}
	if _, err := CombineFeasibility(nil); err == nil {
		t.Error("CombineFeasibility(nil) succeeded, want error")
	}
	if _, err := CombineFeasibility([]FeasibilityRating{FeasibilityLow, 0}); err == nil {
		t.Error("CombineFeasibility with invalid rating succeeded, want error")
	}
}
