package tara

import (
	"encoding/json"
	"fmt"
	"io"
)

// TARA analyses are work products exchanged with assessors and suppliers
// (UNR-155 cascading). This file gives Analysis a stable JSON document
// form. Enumerations serialize as their display names, not integers, so
// documents stay meaningful to humans and robust against reordering of
// Go constants.

// analysisDoc is the wire form of an Analysis.
type analysisDoc struct {
	Item    *itemDoc     `json:"item"`
	Damages []*damageDoc `json:"damage_scenarios"`
	Threats []*threatDoc `json:"threat_scenarios"`
	Paths   []*pathDoc   `json:"attack_paths"`
	// Models: only the vector table is serialized (the PSP-tunable
	// part); potential weights, risk matrix and CAL table deserialize to
	// the standard defaults and can be overridden programmatically.
	VectorModel *vectorTableDoc `json:"vector_model,omitempty"`
	// ThreatTables carries the per-threat vector table overrides learned
	// by the social loop.
	ThreatTables map[string]*vectorTableDoc `json:"threat_tables,omitempty"`
}

type itemDoc struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Assets      []*assetDoc `json:"assets"`
}

type assetDoc struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Properties  []string `json:"properties"`
	ECU         string   `json:"ecu,omitempty"`
}

type damageDoc struct {
	ID          string            `json:"id"`
	Description string            `json:"description,omitempty"`
	AssetIDs    []string          `json:"asset_ids,omitempty"`
	Impacts     map[string]string `json:"impacts"`
}

type threatDoc struct {
	ID          string   `json:"id"`
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	DamageIDs   []string `json:"damage_ids"`
	AssetIDs    []string `json:"asset_ids,omitempty"`
	Property    string   `json:"property"`
	STRIDE      string   `json:"stride"`
	Profiles    []string `json:"profiles,omitempty"`
	Vector      string   `json:"vector"`
	Keywords    []string `json:"keywords,omitempty"`
}

type pathDoc struct {
	ID       string     `json:"id"`
	ThreatID string     `json:"threat_id"`
	Steps    []*stepDoc `json:"steps"`
}

type stepDoc struct {
	Description string        `json:"description,omitempty"`
	Vector      string        `json:"vector"`
	Potential   *potentialDoc `json:"potential,omitempty"`
}

type potentialDoc struct {
	Time      int `json:"elapsed_time"`
	Expertise int `json:"expertise"`
	Knowledge int `json:"knowledge"`
	Window    int `json:"window"`
	Equipment int `json:"equipment"`
}

type vectorTableDoc struct {
	Name    string            `json:"name"`
	Ratings map[string]string `json:"ratings"`
}

// WriteJSON serializes the analysis as an indented JSON document. The
// analysis is validated first: invalid work products must not circulate.
func (a *Analysis) WriteJSON(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return fmt.Errorf("tara: refuse to serialize invalid analysis: %w", err)
	}
	doc := &analysisDoc{Item: encodeItem(a.Item)}
	for _, d := range a.Damages {
		doc.Damages = append(doc.Damages, encodeDamage(d))
	}
	for _, t := range a.Threats {
		doc.Threats = append(doc.Threats, encodeThreat(t))
	}
	for _, p := range a.Paths {
		doc.Paths = append(doc.Paths, encodePath(p))
	}
	if a.VectorModel != nil && !a.VectorModel.Equal(StandardVectorTable()) {
		doc.VectorModel = encodeVectorTable(a.VectorModel)
	}
	for id, tbl := range a.ThreatTables {
		if tbl == nil {
			continue
		}
		if doc.ThreatTables == nil {
			doc.ThreatTables = make(map[string]*vectorTableDoc)
		}
		doc.ThreatTables[id] = encodeVectorTable(tbl)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes an analysis document, installing standard models
// where the document does not override them, and validates the result.
func ReadJSON(r io.Reader) (*Analysis, error) {
	var doc analysisDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("tara: decode analysis: %w", err)
	}
	if doc.Item == nil {
		return nil, fmt.Errorf("tara: analysis document without item")
	}
	item, err := decodeItem(doc.Item)
	if err != nil {
		return nil, err
	}
	a := NewAnalysis(item)
	for _, d := range doc.Damages {
		dec, err := decodeDamage(d)
		if err != nil {
			return nil, err
		}
		a.AddDamage(dec)
	}
	for _, t := range doc.Threats {
		dec, err := decodeThreat(t)
		if err != nil {
			return nil, err
		}
		a.AddThreat(dec)
	}
	for _, p := range doc.Paths {
		dec, err := decodePath(p)
		if err != nil {
			return nil, err
		}
		a.AddPath(dec)
	}
	if doc.VectorModel != nil {
		tbl, err := decodeVectorTable(doc.VectorModel)
		if err != nil {
			return nil, err
		}
		a.VectorModel = tbl
	}
	for id, td := range doc.ThreatTables {
		tbl, err := decodeVectorTable(td)
		if err != nil {
			return nil, fmt.Errorf("threat table %s: %w", id, err)
		}
		if a.ThreatTables == nil {
			a.ThreatTables = make(map[string]*VectorTable)
		}
		a.ThreatTables[id] = tbl
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("tara: decoded analysis invalid: %w", err)
	}
	return a, nil
}

func encodeItem(it *Item) *itemDoc {
	doc := &itemDoc{Name: it.Name, Description: it.Description}
	for _, a := range it.Assets {
		doc.Assets = append(doc.Assets, encodeAsset(a))
	}
	return doc
}

func decodeItem(doc *itemDoc) (*Item, error) {
	it := &Item{Name: doc.Name, Description: doc.Description}
	for _, a := range doc.Assets {
		as, err := decodeAsset(a)
		if err != nil {
			return nil, err
		}
		it.Assets = append(it.Assets, as)
	}
	return it, nil
}

func encodeAsset(a *Asset) *assetDoc {
	props := make([]string, len(a.Properties))
	for i, p := range a.Properties {
		props[i] = p.String()
	}
	return &assetDoc{
		ID: a.ID, Name: a.Name, Description: a.Description,
		Properties: props, ECU: a.ECU,
	}
}

func decodeAsset(doc *assetDoc) (*Asset, error) {
	props := make([]SecurityProperty, 0, len(doc.Properties))
	for _, s := range doc.Properties {
		p, err := parseProperty(s)
		if err != nil {
			return nil, fmt.Errorf("asset %s: %w", doc.ID, err)
		}
		props = append(props, p)
	}
	return &Asset{
		ID: doc.ID, Name: doc.Name, Description: doc.Description,
		Properties: props, ECU: doc.ECU,
	}, nil
}

func encodeDamage(d *DamageScenario) *damageDoc {
	impacts := make(map[string]string, len(d.Impacts))
	for c, r := range d.Impacts {
		impacts[c.String()] = r.String()
	}
	return &damageDoc{
		ID: d.ID, Description: d.Description,
		AssetIDs: d.AssetIDs, Impacts: impacts,
	}
}

func decodeDamage(doc *damageDoc) (*DamageScenario, error) {
	impacts := make(map[ImpactCategory]ImpactRating, len(doc.Impacts))
	for cs, rs := range doc.Impacts {
		c, err := parseCategory(cs)
		if err != nil {
			return nil, fmt.Errorf("damage %s: %w", doc.ID, err)
		}
		r, err := ParseImpact(rs)
		if err != nil {
			return nil, fmt.Errorf("damage %s: %w", doc.ID, err)
		}
		impacts[c] = r
	}
	return &DamageScenario{
		ID: doc.ID, Description: doc.Description,
		AssetIDs: doc.AssetIDs, Impacts: impacts,
	}, nil
}

func encodeThreat(t *ThreatScenario) *threatDoc {
	profiles := make([]string, len(t.Profiles))
	for i, p := range t.Profiles {
		profiles[i] = p.String()
	}
	return &threatDoc{
		ID: t.ID, Name: t.Name, Description: t.Description,
		DamageIDs: t.DamageIDs, AssetIDs: t.AssetIDs,
		Property: t.Property.String(), STRIDE: t.STRIDE.String(),
		Profiles: profiles, Vector: t.Vector.String(), Keywords: t.Keywords,
	}
}

func decodeThreat(doc *threatDoc) (*ThreatScenario, error) {
	prop, err := parseProperty(doc.Property)
	if err != nil {
		return nil, fmt.Errorf("threat %s: %w", doc.ID, err)
	}
	stride, err := parseSTRIDE(doc.STRIDE)
	if err != nil {
		return nil, fmt.Errorf("threat %s: %w", doc.ID, err)
	}
	vector, err := ParseVector(doc.Vector)
	if err != nil {
		return nil, fmt.Errorf("threat %s: %w", doc.ID, err)
	}
	profiles := make([]AttackerProfile, 0, len(doc.Profiles))
	for _, s := range doc.Profiles {
		p, err := parseProfile(s)
		if err != nil {
			return nil, fmt.Errorf("threat %s: %w", doc.ID, err)
		}
		profiles = append(profiles, p)
	}
	return &ThreatScenario{
		ID: doc.ID, Name: doc.Name, Description: doc.Description,
		DamageIDs: doc.DamageIDs, AssetIDs: doc.AssetIDs,
		Property: prop, STRIDE: stride, Profiles: profiles,
		Vector: vector, Keywords: doc.Keywords,
	}, nil
}

func encodePath(p *AttackPath) *pathDoc {
	doc := &pathDoc{ID: p.ID, ThreatID: p.ThreatID}
	for _, s := range p.Steps {
		sd := &stepDoc{Description: s.Description, Vector: s.Vector.String()}
		if s.Potential != nil {
			sd.Potential = &potentialDoc{
				Time:      int(s.Potential.Time),
				Expertise: int(s.Potential.Expertise),
				Knowledge: int(s.Potential.Knowledge),
				Window:    int(s.Potential.Window),
				Equipment: int(s.Potential.Equipment),
			}
		}
		doc.Steps = append(doc.Steps, sd)
	}
	return doc
}

func decodePath(doc *pathDoc) (*AttackPath, error) {
	p := &AttackPath{ID: doc.ID, ThreatID: doc.ThreatID}
	for i, sd := range doc.Steps {
		v, err := ParseVector(sd.Vector)
		if err != nil {
			return nil, fmt.Errorf("path %s step %d: %w", doc.ID, i, err)
		}
		step := AttackStep{Description: sd.Description, Vector: v}
		if sd.Potential != nil {
			step.Potential = &AttackPotentialInput{
				Time:      ElapsedTime(sd.Potential.Time),
				Expertise: SpecialistExpertise(sd.Potential.Expertise),
				Knowledge: ItemKnowledge(sd.Potential.Knowledge),
				Window:    WindowOfOpportunity(sd.Potential.Window),
				Equipment: Equipment(sd.Potential.Equipment),
			}
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

func encodeVectorTable(t *VectorTable) *vectorTableDoc {
	ratings := make(map[string]string, 4)
	for v, r := range t.Ratings() {
		ratings[v.String()] = r.String()
	}
	return &vectorTableDoc{Name: t.Name, Ratings: ratings}
}

func decodeVectorTable(doc *vectorTableDoc) (*VectorTable, error) {
	ratings := make(map[AttackVector]FeasibilityRating, len(doc.Ratings))
	for vs, rs := range doc.Ratings {
		v, err := ParseVector(vs)
		if err != nil {
			return nil, err
		}
		r, err := ParseFeasibility(rs)
		if err != nil {
			return nil, err
		}
		ratings[v] = r
	}
	return NewVectorTable(doc.Name, ratings)
}

// Name-based parsers for the enumerations that only had String methods.

func parseProperty(s string) (SecurityProperty, error) {
	for p := PropertyConfidentiality; p <= PropertyNonRepudiation; p++ {
		if normalizeName(p.String()) == normalizeName(s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("tara: unknown security property %q", s)
}

func parseCategory(s string) (ImpactCategory, error) {
	for c := CategorySafety; c <= CategoryPrivacy; c++ {
		if normalizeName(c.String()) == normalizeName(s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("tara: unknown impact category %q", s)
}

func parseSTRIDE(s string) (STRIDECategory, error) {
	for c := Spoofing; c <= ElevationOfPrivilege; c++ {
		if normalizeName(c.String()) == normalizeName(s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("tara: unknown STRIDE category %q", s)
}

func parseProfile(s string) (AttackerProfile, error) {
	for p := ProfileInsider; p <= ProfileRemote; p++ {
		if normalizeName(p.String()) == normalizeName(s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("tara: unknown attacker profile %q", s)
}
