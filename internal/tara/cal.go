package tara

import "fmt"

// CAL is a Cybersecurity Assurance Level, the rigor target ISO/SAE 21434
// assigns to a cybersecurity goal (Annex E). CAL1 is the lowest level of
// assurance and CAL4 the highest, mirroring ASIL A–D of ISO 26262.
type CAL int

// Assurance levels. CALNone indicates that no cybersecurity assurance
// activities are required for the goal.
const (
	CALNone CAL = iota
	CAL1
	CAL2
	CAL3
	CAL4
)

// String returns "CAL1".."CAL4", or "-" for CALNone.
func (c CAL) String() string {
	switch c {
	case CALNone:
		return "-"
	case CAL1, CAL2, CAL3, CAL4:
		return fmt.Sprintf("CAL%d", int(c))
	}
	return fmt.Sprintf("CAL(%d)", int(c))
}

// Valid reports whether c is CALNone or one of CAL1..CAL4.
func (c CAL) Valid() bool { return c >= CALNone && c <= CAL4 }

// CALTable determines the CAL from the impact rating and the attack
// vector of the relevant threat scenario (Fig. 6 of the paper). The
// standard's table caps every physical-vector goal at CAL2 — the
// limitation the paper highlights for powertrain DoS scenarios.
type CALTable struct {
	Name string

	cells map[ImpactRating]map[AttackVector]CAL
}

// StandardCALTable returns the CAL determination matrix of ISO/SAE 21434
// Annex E (Fig. 6 of the paper):
//
//	                Physical  Local  Adjacent  Network
//	Severe           CAL2     CAL3   CAL4      CAL4
//	Major            CAL1     CAL2   CAL3      CAL3
//	Moderate         CAL1     CAL1   CAL2      CAL2
//	Negligible       -        -      -         -
func StandardCALTable() *CALTable {
	return &CALTable{
		Name: "ISO/SAE 21434 Annex E (CAL determination)",
		cells: map[ImpactRating]map[AttackVector]CAL{
			ImpactSevere: {
				VectorPhysical: CAL2, VectorLocal: CAL3, VectorAdjacent: CAL4, VectorNetwork: CAL4,
			},
			ImpactMajor: {
				VectorPhysical: CAL1, VectorLocal: CAL2, VectorAdjacent: CAL3, VectorNetwork: CAL3,
			},
			ImpactModerate: {
				VectorPhysical: CAL1, VectorLocal: CAL1, VectorAdjacent: CAL2, VectorNetwork: CAL2,
			},
			ImpactNegligible: {
				VectorPhysical: CALNone, VectorLocal: CALNone, VectorAdjacent: CALNone, VectorNetwork: CALNone,
			},
		},
	}
}

// NewCALTable builds a custom CAL determination matrix. Every
// impact × vector cell must be present and valid.
func NewCALTable(name string, cells map[ImpactRating]map[AttackVector]CAL) (*CALTable, error) {
	cp := make(map[ImpactRating]map[AttackVector]CAL, len(cells))
	for _, imp := range []ImpactRating{ImpactNegligible, ImpactModerate, ImpactMajor, ImpactSevere} {
		row, ok := cells[imp]
		if !ok {
			return nil, fmt.Errorf("tara: CAL table %q: missing impact row %s", name, imp)
		}
		cpRow := make(map[AttackVector]CAL, len(row))
		for _, v := range AllVectors() {
			c, ok := row[v]
			if !ok {
				return nil, fmt.Errorf("tara: CAL table %q: missing cell %s × %s", name, imp, v)
			}
			if !c.Valid() {
				return nil, fmt.Errorf("tara: CAL table %q: invalid CAL %d at %s × %s", name, int(c), imp, v)
			}
			cpRow[v] = c
		}
		cp[imp] = cpRow
	}
	return &CALTable{Name: name, cells: cp}, nil
}

// Determine returns the CAL for the given impact rating and attack vector.
func (t *CALTable) Determine(impact ImpactRating, vector AttackVector) (CAL, error) {
	if !impact.Valid() {
		return 0, fmt.Errorf("tara: CAL determination: invalid impact rating %d", int(impact))
	}
	if !vector.Valid() {
		return 0, fmt.Errorf("tara: CAL determination: invalid attack vector %d", int(vector))
	}
	return t.cells[impact][vector], nil
}

// MaxForVector returns the highest CAL reachable through the given attack
// vector — e.g. CAL2 for physical attacks under the standard table, which
// is the ceiling the paper criticizes for safety-critical powertrain DoS.
func (t *CALTable) MaxForVector(vector AttackVector) (CAL, error) {
	if !vector.Valid() {
		return 0, fmt.Errorf("tara: CAL determination: invalid attack vector %d", int(vector))
	}
	maxCAL := CALNone
	for _, row := range t.cells {
		if c := row[vector]; c > maxCAL {
			maxCAL = c
		}
	}
	return maxCAL, nil
}
