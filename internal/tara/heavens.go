package tara

import "fmt"

// The HEAVENS model (Lautenbach et al., cited as [15] by the paper)
// derives impact ratings from per-category parameter levels instead of
// direct expert assignment. This file implements that derivation: each
// SFOP category gets a 0–3 level and the levels map onto the ISO/SAE
// 21434 impact scale.

// SafetyLevel follows the ISO 26262 severity classes S0–S3.
type SafetyLevel int

// Safety levels.
const (
	SafetyNone       SafetyLevel = iota // S0: no injuries
	SafetyLight                         // S1: light and moderate injuries
	SafetySevere                        // S2: severe injuries, survival probable
	SafetyLifeThreat                    // S3: life-threatening, survival uncertain
)

// FinancialLevel classifies the economic damage to the stakeholder.
type FinancialLevel int

// Financial levels.
const (
	FinancialNone     FinancialLevel = iota // F0: negligible
	FinancialLow                            // F1: inconvenient, absorbable
	FinancialModerate                       // F2: substantial, recoverable
	FinancialHigh                           // F3: existential / regulatory fines
)

// OperationalLevel classifies the loss of vehicle function.
type OperationalLevel int

// Operational levels.
const (
	OperationalNone     OperationalLevel = iota // O0: no impact
	OperationalDegraded                         // O1: degraded comfort function
	OperationalPartial                          // O2: loss of non-critical function
	OperationalFull                             // O3: loss of a primary function
)

// PrivacyLevel classifies the exposure of personal data.
type PrivacyLevel int

// Privacy levels.
const (
	PrivacyNone      PrivacyLevel = iota // P0: no personal data involved
	PrivacyAnonymous                     // P1: data hard to link to a person
	PrivacyLinkable                      // P2: data linkable to a person
	PrivacySensitive                     // P3: sensitive data, identity theft
)

// ImpactParams carries the four HEAVENS-style levels.
type ImpactParams struct {
	Safety      SafetyLevel
	Financial   FinancialLevel
	Operational OperationalLevel
	Privacy     PrivacyLevel
}

// Validate checks every level range.
func (p ImpactParams) Validate() error {
	if p.Safety < SafetyNone || p.Safety > SafetyLifeThreat {
		return fmt.Errorf("tara: invalid safety level %d", int(p.Safety))
	}
	if p.Financial < FinancialNone || p.Financial > FinancialHigh {
		return fmt.Errorf("tara: invalid financial level %d", int(p.Financial))
	}
	if p.Operational < OperationalNone || p.Operational > OperationalFull {
		return fmt.Errorf("tara: invalid operational level %d", int(p.Operational))
	}
	if p.Privacy < PrivacyNone || p.Privacy > PrivacySensitive {
		return fmt.Errorf("tara: invalid privacy level %d", int(p.Privacy))
	}
	return nil
}

// levelToImpact maps a 0–3 category level to the impact scale: level 0 →
// Negligible, 1 → Moderate, 2 → Major, 3 → Severe.
func levelToImpact(level int) ImpactRating {
	switch level {
	case 0:
		return ImpactNegligible
	case 1:
		return ImpactModerate
	case 2:
		return ImpactMajor
	default:
		return ImpactSevere
	}
}

// DeriveImpacts converts the parameter levels into the per-category
// impact map a DamageScenario carries. Every category is present, so the
// derivation is auditable even for Negligible entries.
func DeriveImpacts(p ImpactParams) (map[ImpactCategory]ImpactRating, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return map[ImpactCategory]ImpactRating{
		CategorySafety:      levelToImpact(int(p.Safety)),
		CategoryFinancial:   levelToImpact(int(p.Financial)),
		CategoryOperational: levelToImpact(int(p.Operational)),
		CategoryPrivacy:     levelToImpact(int(p.Privacy)),
	}, nil
}

// NewDamageScenario builds a damage scenario with HEAVENS-derived
// impacts.
func NewDamageScenario(id, description string, assetIDs []string, p ImpactParams) (*DamageScenario, error) {
	impacts, err := DeriveImpacts(p)
	if err != nil {
		return nil, fmt.Errorf("damage scenario %s: %w", id, err)
	}
	d := &DamageScenario{
		ID:          id,
		Description: description,
		AssetIDs:    assetIDs,
		Impacts:     impacts,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
