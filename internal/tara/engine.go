package tara

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// This file holds the incremental rating engine: the validate-once index
// over an Analysis, the dirty/memo tracker that makes re-rating
// proportional to the size of a change, and the Plan / Rate / Commit
// split of the monolithic Run loop.
//
// The dirty-tracking contract mirrors the fill-identity memos of the
// core result cache: a memoized *ThreatResult stays valid — and is
// reused pointer-identically, hence byte-identically — until a mutation
// touches the threat's inputs (the scenario itself, a linked damage or
// asset, a path of its attack subgraph, or a rating model). Mutations
// made through the Upsert*/Remove*/Set* API maintain the index and the
// dirty set precisely. Mutating the exported fields of an Analysis
// directly is still allowed for model-building compatibility: swapped
// slices, items or model tables are detected by pointer snapshot and
// trigger a full revalidation, but editing an entity's fields in place
// is invisible — call Invalidate after doing that.

// analysisIndex is the validate-time index over an analysis: ID-keyed
// entity maps plus the threat → attack-path adjacency. It is rebuilt by
// buildIndex (which fully validates the analysis) and maintained
// incrementally by the mutation API.
type analysisIndex struct {
	assets  map[string]*Asset
	damages map[string]*DamageScenario
	threats map[string]*ThreatScenario
	paths   map[string]*AttackPath
	// pathsByThreat keeps each threat's paths in registration order so
	// that feasibility tie-breaking (first best path wins) matches the
	// sequential scan of Analysis.Paths.
	pathsByThreat map[string][]*AttackPath
}

// buildIndex validates the whole analysis — item and element validity,
// unique IDs, referential integrity — and returns the index. It is the
// single-pass, map-backed replacement for the quadratic cross-check the
// old Validate/Run pair performed with linear lookups.
func buildIndex(a *Analysis) (*analysisIndex, error) {
	if a.Item == nil {
		return nil, fmt.Errorf("tara: analysis without item definition")
	}
	if err := a.Item.Validate(); err != nil {
		return nil, err
	}
	if err := a.checkModels(); err != nil {
		return nil, err
	}
	idx := &analysisIndex{
		assets:        make(map[string]*Asset, len(a.Item.Assets)),
		damages:       make(map[string]*DamageScenario, len(a.Damages)),
		threats:       make(map[string]*ThreatScenario, len(a.Threats)),
		paths:         make(map[string]*AttackPath, len(a.Paths)),
		pathsByThreat: make(map[string][]*AttackPath),
	}
	for _, as := range a.Item.Assets {
		idx.assets[as.ID] = as
	}
	for _, d := range a.Damages {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := idx.damages[d.ID]; dup {
			return nil, fmt.Errorf("tara: duplicate damage scenario ID %s", d.ID)
		}
		idx.damages[d.ID] = d
		for _, assetID := range d.AssetIDs {
			if idx.assets[assetID] == nil {
				return nil, fmt.Errorf("tara: damage scenario %s references unknown asset %s", d.ID, assetID)
			}
		}
	}
	for _, t := range a.Threats {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := idx.threats[t.ID]; dup {
			return nil, fmt.Errorf("tara: duplicate threat scenario ID %s", t.ID)
		}
		idx.threats[t.ID] = t
		for _, dmgID := range t.DamageIDs {
			if idx.damages[dmgID] == nil {
				return nil, fmt.Errorf("tara: threat scenario %s references unknown damage scenario %s", t.ID, dmgID)
			}
		}
		for _, assetID := range t.AssetIDs {
			if idx.assets[assetID] == nil {
				return nil, fmt.Errorf("tara: threat scenario %s references unknown asset %s", t.ID, assetID)
			}
		}
	}
	for _, p := range a.Paths {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := idx.paths[p.ID]; dup {
			return nil, fmt.Errorf("tara: duplicate attack path ID %s", p.ID)
		}
		idx.paths[p.ID] = p
		if idx.threats[p.ThreatID] == nil {
			return nil, fmt.Errorf("tara: attack path %s references unknown threat scenario %s", p.ID, p.ThreatID)
		}
		idx.pathsByThreat[p.ThreatID] = append(idx.pathsByThreat[p.ThreatID], p)
	}
	for id, tbl := range a.ThreatTables {
		if tbl == nil {
			continue
		}
		if idx.threats[id] == nil {
			return nil, fmt.Errorf("tara: threat table override references unknown threat scenario %s", id)
		}
	}
	return idx, nil
}

// checkModels verifies that every rating model is installed.
func (a *Analysis) checkModels() error {
	if a.VectorModel == nil || a.PotentialModel == nil || a.Matrix == nil || a.CALModel == nil {
		name := ""
		if a.Item != nil {
			name = a.Item.Name
		}
		return fmt.Errorf("tara: analysis %s: missing rating model", name)
	}
	return nil
}

// threatsTouchingDamage returns the IDs of threats linking the damage.
func (idx *analysisIndex) threatsTouchingDamage(damageID string) []string {
	var out []string
	for id, t := range idx.threats {
		for _, d := range t.DamageIDs {
			if d == damageID {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// threatsTouchingAsset returns the IDs of threats referencing the asset
// directly or through one of their linked damage scenarios.
func (idx *analysisIndex) threatsTouchingAsset(assetID string) []string {
	damaged := make(map[string]bool)
	for id, d := range idx.damages {
		for _, as := range d.AssetIDs {
			if as == assetID {
				damaged[id] = true
				break
			}
		}
	}
	var out []string
	for id, t := range idx.threats {
		touched := false
		for _, as := range t.AssetIDs {
			if as == assetID {
				touched = true
				break
			}
		}
		if !touched {
			for _, d := range t.DamageIDs {
				if damaged[d] {
					touched = true
					break
				}
			}
		}
		if touched {
			out = append(out, id)
		}
	}
	return out
}

// tracker carries the engine state attached to an Analysis: the index,
// the dirty threat set, the per-threat result memos, the cumulative
// rating-call counter, and the pointer snapshot used to detect direct
// field mutation.
type tracker struct {
	idx   *analysisIndex
	dirty map[string]bool
	memo  map[string]*ThreatResult
	calls atomic.Uint64

	// Pointer snapshot of the analysis structure and models as of the
	// last index build or API mutation. A mismatch at Plan time means
	// the exported fields were mutated directly.
	item    *Item
	assets  []*Asset
	damages []*DamageScenario
	threats []*ThreatScenario
	paths   []*AttackPath

	vector    *VectorTable
	potential *AttackPotentialWeights
	bands     PotentialThresholds
	matrix    *RiskMatrix
	cal       *CALTable
	tables    map[string]*VectorTable
}

// newTracker builds a fresh tracker (everything dirty) around a built
// index, carrying the rating-call counter over from a predecessor.
func newTracker(a *Analysis, idx *analysisIndex, prev *tracker) *tracker {
	tr := &tracker{
		idx:   idx,
		dirty: make(map[string]bool),
		memo:  make(map[string]*ThreatResult),
	}
	if prev != nil {
		tr.calls.Store(prev.calls.Load())
	}
	tr.syncStructure(a)
	tr.syncModels(a)
	return tr
}

func samePtrs[T any](snap []*T, cur []*T) bool {
	if len(snap) != len(cur) {
		return false
	}
	for i := range cur {
		if snap[i] != cur[i] {
			return false
		}
	}
	return true
}

// structureMatches reports whether the analysis still holds exactly the
// entities the tracker indexed (by pointer identity).
func (tr *tracker) structureMatches(a *Analysis) bool {
	if tr.item != a.Item || a.Item == nil {
		return false
	}
	return samePtrs(tr.assets, a.Item.Assets) &&
		samePtrs(tr.damages, a.Damages) &&
		samePtrs(tr.threats, a.Threats) &&
		samePtrs(tr.paths, a.Paths)
}

// quickMatch is the O(1) plausibility check used by the public lookup
// accessors on every call: item identity, lengths, and boundary element
// identity. It trades exhaustiveness for constant cost; the mutation
// API keeps it exact, and direct slice surgery is caught by the full
// structureMatches at Plan time.
func (tr *tracker) quickMatch(a *Analysis) bool {
	if tr.item != a.Item || a.Item == nil {
		return false
	}
	if len(tr.assets) != len(a.Item.Assets) || len(tr.damages) != len(a.Damages) ||
		len(tr.threats) != len(a.Threats) || len(tr.paths) != len(a.Paths) {
		return false
	}
	if n := len(a.Damages); n > 0 && tr.damages[n-1] != a.Damages[n-1] {
		return false
	}
	if n := len(a.Threats); n > 0 && tr.threats[n-1] != a.Threats[n-1] {
		return false
	}
	if n := len(a.Paths); n > 0 && tr.paths[n-1] != a.Paths[n-1] {
		return false
	}
	return true
}

// modelsMatch reports whether the rating models are the ones last
// snapshotted (pointer identity; thresholds by value).
func (tr *tracker) modelsMatch(a *Analysis) bool {
	if tr.vector != a.VectorModel || tr.potential != a.PotentialModel ||
		tr.bands != a.PotentialBands || tr.matrix != a.Matrix || tr.cal != a.CALModel {
		return false
	}
	if len(tr.tables) != len(a.ThreatTables) {
		return false
	}
	for id, tbl := range a.ThreatTables {
		if tr.tables[id] != tbl {
			return false
		}
	}
	return true
}

func (tr *tracker) syncStructure(a *Analysis) {
	tr.item = a.Item
	tr.assets = append([]*Asset(nil), a.Item.Assets...)
	tr.damages = append([]*DamageScenario(nil), a.Damages...)
	tr.threats = append([]*ThreatScenario(nil), a.Threats...)
	tr.paths = append([]*AttackPath(nil), a.Paths...)
}

func (tr *tracker) syncModels(a *Analysis) {
	tr.vector = a.VectorModel
	tr.potential = a.PotentialModel
	tr.bands = a.PotentialBands
	tr.matrix = a.Matrix
	tr.cal = a.CALModel
	tr.tables = make(map[string]*VectorTable, len(a.ThreatTables))
	for id, tbl := range a.ThreatTables {
		tr.tables[id] = tbl
	}
}

func (tr *tracker) markAllDirty() {
	for id := range tr.idx.threats {
		tr.dirty[id] = true
	}
}

func (tr *tracker) markDirty(ids ...string) {
	for _, id := range ids {
		tr.dirty[id] = true
	}
}

// Invalidate drops all engine state attached to the analysis: the next
// Plan or Run fully revalidates and re-rates everything. Call it after
// mutating an entity's fields in place, which the pointer-snapshot
// change detection cannot see.
func (a *Analysis) Invalidate() { a.track = nil }

// RatingCalls returns the cumulative number of per-threat rating
// invocations performed on this analysis. It is the observability hook
// for verifying that incremental runs re-rate only dirty threats.
func (a *Analysis) RatingCalls() uint64 {
	if a.track == nil {
		return 0
	}
	return a.track.calls.Load()
}

// Plan is a prepared rating pass over an analysis: the set of dirty
// threat IDs to (re-)rate, in sorted order. Rate is pure with respect to
// the plan and safe to call concurrently for distinct or identical IDs;
// Commit is not safe for concurrent use and must run after all Rate
// calls finish.
type Plan struct {
	a  *Analysis
	tr *tracker
	// Dirty lists the threat scenario IDs that must be rated before
	// Commit, sorted ascending for deterministic fan-out.
	Dirty []string
}

// Plan validates the analysis (incrementally when the engine state is
// current) and returns the rating plan. A structurally unchanged,
// fully-memoized analysis yields an empty Dirty list.
func (a *Analysis) Plan() (*Plan, error) {
	tr := a.track
	if tr == nil || !tr.structureMatches(a) {
		idx, err := buildIndex(a)
		if err != nil {
			a.track = nil
			return nil, err
		}
		tr = newTracker(a, idx, a.track)
		a.track = tr
	} else if !tr.modelsMatch(a) {
		if err := a.checkModels(); err != nil {
			return nil, err
		}
		tr.markAllDirty()
		tr.syncModels(a)
	}
	dirty := make([]string, 0, len(tr.dirty))
	for _, t := range a.Threats {
		if tr.dirty[t.ID] || tr.memo[t.ID] == nil {
			dirty = append(dirty, t.ID)
		}
	}
	sort.Strings(dirty)
	return &Plan{a: a, tr: tr, Dirty: dirty}, nil
}

// Rate determines impact, feasibility, risk, treatment and CAL for one
// threat scenario of the plan. It reads only immutable plan state and is
// safe to call from multiple goroutines.
func (p *Plan) Rate(id string) (*ThreatResult, error) {
	t := p.tr.idx.threats[id]
	if t == nil {
		return nil, fmt.Errorf("tara: rate: unknown threat scenario %s", id)
	}
	p.tr.calls.Add(1)
	return rateThreat(p.a, p.tr.idx, t)
}

// Commit installs the rated results — one per Dirty entry, in Dirty
// order — into the memo table and assembles the full result set, with
// clean threats served from their memoized results byte-identically.
// Results are sorted by descending risk, then threat ID.
func (p *Plan) Commit(rated []*ThreatResult) ([]*ThreatResult, error) {
	if p.a.track != p.tr {
		return nil, fmt.Errorf("tara: commit: plan is stale (analysis was invalidated)")
	}
	if len(rated) != len(p.Dirty) {
		return nil, fmt.Errorf("tara: commit: %d results for %d dirty threats", len(rated), len(p.Dirty))
	}
	for i, r := range rated {
		if r == nil || r.Threat == nil || r.Threat.ID != p.Dirty[i] {
			return nil, fmt.Errorf("tara: commit: result %d does not match dirty threat %s", i, p.Dirty[i])
		}
		p.tr.memo[p.Dirty[i]] = r
	}
	for _, id := range p.Dirty {
		delete(p.tr.dirty, id)
	}
	results := make([]*ThreatResult, 0, len(p.a.Threats))
	for _, t := range p.a.Threats {
		r := p.tr.memo[t.ID]
		if r == nil {
			return nil, fmt.Errorf("tara: commit: no result for threat scenario %s (mutated during rating?)", t.ID)
		}
		results = append(results, r)
	}
	sortResults(results)
	return results, nil
}

func sortResults(results []*ThreatResult) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Risk != results[j].Risk {
			return results[i].Risk > results[j].Risk
		}
		return results[i].Threat.ID < results[j].Threat.ID
	})
}

// rateThreat is the pure per-threat rating function: impact aggregation,
// feasibility combination, risk matrix lookup, treatment suggestion and
// CAL determination, exactly as the batch Run loop performed them.
func rateThreat(a *Analysis, idx *analysisIndex, t *ThreatScenario) (*ThreatResult, error) {
	impact, err := threatImpact(idx, t)
	if err != nil {
		return nil, err
	}
	feas, dom, err := threatFeasibility(a, idx, t)
	if err != nil {
		return nil, err
	}
	risk, err := a.Matrix.Risk(impact, feas)
	if err != nil {
		return nil, err
	}
	treatment, err := SuggestTreatment(risk)
	if err != nil {
		return nil, err
	}
	cal, err := a.CALModel.Determine(impact, dom)
	if err != nil {
		return nil, err
	}
	return &ThreatResult{
		Threat:         t,
		Impact:         impact,
		Feasibility:    feas,
		Risk:           risk,
		Treatment:      treatment,
		CAL:            cal,
		DominantVector: dom,
	}, nil
}

// threatImpact aggregates the overall impact of the threat's linked
// damage scenarios (maximum rule).
func threatImpact(idx *analysisIndex, t *ThreatScenario) (ImpactRating, error) {
	var maxImpact ImpactRating
	for _, dmgID := range t.DamageIDs {
		d := idx.damages[dmgID]
		if d == nil {
			return 0, fmt.Errorf("tara: threat scenario %s references unknown damage scenario %s", t.ID, dmgID)
		}
		if imp := d.OverallImpact(); imp > maxImpact {
			maxImpact = imp
		}
	}
	if !maxImpact.Valid() {
		return 0, fmt.Errorf("tara: threat scenario %s: no rated damage scenarios", t.ID)
	}
	return maxImpact, nil
}

// threatFeasibility combines the feasibility of the threat's attack
// paths. Paths carrying potential profiles use the attack potential-based
// approach; others use the vector-based table, honouring a per-threat
// table override when one is installed. Threats without analyzed paths
// fall back to their declared vector.
func threatFeasibility(a *Analysis, idx *analysisIndex, t *ThreatScenario) (FeasibilityRating, AttackVector, error) {
	table := a.VectorModel
	if tbl := a.ThreatTables[t.ID]; tbl != nil {
		table = tbl
	}
	paths := idx.pathsByThreat[t.ID]
	if len(paths) == 0 {
		r, err := table.Rating(t.Vector)
		return r, t.Vector, err
	}
	best, bestVector := FeasibilityRating(0), t.Vector
	for _, p := range paths {
		var r FeasibilityRating
		var err error
		if pathHasPotential(p) {
			r, err = p.RateByPotential(a.PotentialModel, a.PotentialBands)
		} else {
			r, err = p.RateByVector(table)
		}
		if err != nil {
			return 0, 0, err
		}
		if r > best {
			best, bestVector = r, p.DominantVector()
		}
	}
	return best, bestVector, nil
}
