package tara

import (
	"fmt"
	"sort"
)

// Analysis is a complete TARA work product: an item with its assets,
// damage scenarios, threat scenarios and attack paths, plus the models
// used to rate them. It corresponds to the Clause 15 deliverable that the
// development lifecycle (Fig. 2) reprocesses at every phase.
type Analysis struct {
	// Item is the item definition under analysis.
	Item *Item
	// Damages are the identified damage scenarios.
	Damages []*DamageScenario
	// Threats are the identified threat scenarios.
	Threats []*ThreatScenario
	// Paths are the analyzed attack paths, each linked to a threat.
	Paths []*AttackPath

	// VectorModel is the attack vector-based feasibility table used for
	// scenarios rated by vector. Defaults to the standard G.9 table.
	VectorModel *VectorTable
	// PotentialModel and PotentialBands configure the attack
	// potential-based approach for paths carrying potential profiles.
	PotentialModel *AttackPotentialWeights
	PotentialBands PotentialThresholds
	// Matrix is the risk matrix. Defaults to the standard Annex H matrix.
	Matrix *RiskMatrix
	// CALModel is the CAL determination table. Defaults to the standard
	// Annex E table.
	CALModel *CALTable
}

// NewAnalysis builds an Analysis around an item with the standard's
// default models installed.
func NewAnalysis(item *Item) *Analysis {
	return &Analysis{
		Item:           item,
		VectorModel:    StandardVectorTable(),
		PotentialModel: StandardPotentialWeights(),
		PotentialBands: StandardPotentialThresholds(),
		Matrix:         StandardRiskMatrix(),
		CALModel:       StandardCALTable(),
	}
}

// AddDamage registers a damage scenario.
func (a *Analysis) AddDamage(d *DamageScenario) *Analysis {
	a.Damages = append(a.Damages, d)
	return a
}

// AddThreat registers a threat scenario.
func (a *Analysis) AddThreat(t *ThreatScenario) *Analysis {
	a.Threats = append(a.Threats, t)
	return a
}

// AddPath registers an attack path.
func (a *Analysis) AddPath(p *AttackPath) *Analysis {
	a.Paths = append(a.Paths, p)
	return a
}

// Validate cross-checks the whole analysis: item and element validity,
// unique IDs, and referential integrity between threats, damages, assets
// and paths.
func (a *Analysis) Validate() error {
	if a.Item == nil {
		return fmt.Errorf("tara: analysis without item definition")
	}
	if err := a.Item.Validate(); err != nil {
		return err
	}
	if a.VectorModel == nil || a.PotentialModel == nil || a.Matrix == nil || a.CALModel == nil {
		return fmt.Errorf("tara: analysis %s: missing rating model", a.Item.Name)
	}
	damages := make(map[string]*DamageScenario, len(a.Damages))
	for _, d := range a.Damages {
		if err := d.Validate(); err != nil {
			return err
		}
		if _, dup := damages[d.ID]; dup {
			return fmt.Errorf("tara: duplicate damage scenario ID %s", d.ID)
		}
		damages[d.ID] = d
		for _, assetID := range d.AssetIDs {
			if a.Item.Asset(assetID) == nil {
				return fmt.Errorf("tara: damage scenario %s references unknown asset %s", d.ID, assetID)
			}
		}
	}
	threats := make(map[string]*ThreatScenario, len(a.Threats))
	for _, t := range a.Threats {
		if err := t.Validate(); err != nil {
			return err
		}
		if _, dup := threats[t.ID]; dup {
			return fmt.Errorf("tara: duplicate threat scenario ID %s", t.ID)
		}
		threats[t.ID] = t
		for _, dmgID := range t.DamageIDs {
			if _, ok := damages[dmgID]; !ok {
				return fmt.Errorf("tara: threat scenario %s references unknown damage scenario %s", t.ID, dmgID)
			}
		}
		for _, assetID := range t.AssetIDs {
			if a.Item.Asset(assetID) == nil {
				return fmt.Errorf("tara: threat scenario %s references unknown asset %s", t.ID, assetID)
			}
		}
	}
	pathIDs := make(map[string]bool, len(a.Paths))
	for _, p := range a.Paths {
		if err := p.Validate(); err != nil {
			return err
		}
		if pathIDs[p.ID] {
			return fmt.Errorf("tara: duplicate attack path ID %s", p.ID)
		}
		pathIDs[p.ID] = true
		if _, ok := threats[p.ThreatID]; !ok {
			return fmt.Errorf("tara: attack path %s references unknown threat scenario %s", p.ID, p.ThreatID)
		}
	}
	return nil
}

// Damage returns the damage scenario with the given ID, or nil.
func (a *Analysis) Damage(id string) *DamageScenario {
	for _, d := range a.Damages {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Threat returns the threat scenario with the given ID, or nil.
func (a *Analysis) Threat(id string) *ThreatScenario {
	for _, t := range a.Threats {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// PathsFor returns the attack paths linked to a threat scenario, in
// registration order.
func (a *Analysis) PathsFor(threatID string) []*AttackPath {
	var out []*AttackPath
	for _, p := range a.Paths {
		if p.ThreatID == threatID {
			out = append(out, p)
		}
	}
	return out
}

// ThreatResult is the per-threat outcome of a risk determination run.
type ThreatResult struct {
	Threat *ThreatScenario
	// Impact is the overall impact across the linked damage scenarios
	// (maximum of their overall ratings).
	Impact ImpactRating
	// Feasibility is the combined attack feasibility across the threat's
	// paths (or the threat's declared vector if it has no paths).
	Feasibility FeasibilityRating
	// Risk is the matrix cell for Impact × Feasibility.
	Risk RiskValue
	// Treatment is the suggested risk treatment for Risk.
	Treatment TreatmentOption
	// CAL is the assurance level determined from Impact and the threat's
	// dominant attack vector.
	CAL CAL
	// DominantVector is the vector that drove the feasibility rating.
	DominantVector AttackVector
}

// Run validates the analysis and determines impact, feasibility, risk,
// treatment and CAL for every threat scenario. Results are sorted by
// descending risk value, then by threat ID for determinism.
func (a *Analysis) Run() ([]*ThreatResult, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	results := make([]*ThreatResult, 0, len(a.Threats))
	for _, t := range a.Threats {
		impact, err := a.threatImpact(t)
		if err != nil {
			return nil, err
		}
		feas, dom, err := a.threatFeasibility(t)
		if err != nil {
			return nil, err
		}
		risk, err := a.Matrix.Risk(impact, feas)
		if err != nil {
			return nil, err
		}
		treatment, err := SuggestTreatment(risk)
		if err != nil {
			return nil, err
		}
		cal, err := a.CALModel.Determine(impact, dom)
		if err != nil {
			return nil, err
		}
		results = append(results, &ThreatResult{
			Threat:         t,
			Impact:         impact,
			Feasibility:    feas,
			Risk:           risk,
			Treatment:      treatment,
			CAL:            cal,
			DominantVector: dom,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Risk != results[j].Risk {
			return results[i].Risk > results[j].Risk
		}
		return results[i].Threat.ID < results[j].Threat.ID
	})
	return results, nil
}

// threatImpact aggregates the overall impact of the threat's linked
// damage scenarios (maximum rule).
func (a *Analysis) threatImpact(t *ThreatScenario) (ImpactRating, error) {
	var maxImpact ImpactRating
	for _, dmgID := range t.DamageIDs {
		d := a.Damage(dmgID)
		if d == nil {
			return 0, fmt.Errorf("tara: threat scenario %s references unknown damage scenario %s", t.ID, dmgID)
		}
		if imp := d.OverallImpact(); imp > maxImpact {
			maxImpact = imp
		}
	}
	if !maxImpact.Valid() {
		return 0, fmt.Errorf("tara: threat scenario %s: no rated damage scenarios", t.ID)
	}
	return maxImpact, nil
}

// threatFeasibility combines the feasibility of the threat's attack
// paths. Paths carrying potential profiles use the attack potential-based
// approach; others use the vector-based table. Threats without analyzed
// paths fall back to their declared vector. Also returns the vector of
// the path that produced the combined rating.
func (a *Analysis) threatFeasibility(t *ThreatScenario) (FeasibilityRating, AttackVector, error) {
	paths := a.PathsFor(t.ID)
	if len(paths) == 0 {
		r, err := a.VectorModel.Rating(t.Vector)
		return r, t.Vector, err
	}
	best, bestVector := FeasibilityRating(0), t.Vector
	for _, p := range paths {
		var r FeasibilityRating
		var err error
		if pathHasPotential(p) {
			r, err = p.RateByPotential(a.PotentialModel, a.PotentialBands)
		} else {
			r, err = p.RateByVector(a.VectorModel)
		}
		if err != nil {
			return 0, 0, err
		}
		if r > best {
			best, bestVector = r, p.DominantVector()
		}
	}
	return best, bestVector, nil
}

func pathHasPotential(p *AttackPath) bool {
	for _, s := range p.Steps {
		if s.Potential != nil {
			return true
		}
	}
	return false
}
