package tara

// Analysis is a complete TARA work product: an item with its assets,
// damage scenarios, threat scenarios and attack paths, plus the models
// used to rate them. It corresponds to the Clause 15 deliverable that the
// development lifecycle (Fig. 2) reprocesses at every phase.
type Analysis struct {
	// Item is the item definition under analysis.
	Item *Item
	// Damages are the identified damage scenarios.
	Damages []*DamageScenario
	// Threats are the identified threat scenarios.
	Threats []*ThreatScenario
	// Paths are the analyzed attack paths, each linked to a threat.
	Paths []*AttackPath

	// VectorModel is the attack vector-based feasibility table used for
	// scenarios rated by vector. Defaults to the standard G.9 table.
	VectorModel *VectorTable
	// PotentialModel and PotentialBands configure the attack
	// potential-based approach for paths carrying potential profiles.
	PotentialModel *AttackPotentialWeights
	PotentialBands PotentialThresholds
	// Matrix is the risk matrix. Defaults to the standard Annex H matrix.
	Matrix *RiskMatrix
	// CALModel is the CAL determination table. Defaults to the standard
	// Annex E table.
	CALModel *CALTable
	// ThreatTables optionally overrides VectorModel per threat scenario.
	// This is how PSP-tuned vector tables from the social loop feed the
	// rating of exactly the threats they were learned for. Nil entries
	// are ignored; use SetThreatTable to maintain the map.
	ThreatTables map[string]*VectorTable

	// track is the incremental engine state (index, dirty set, result
	// memos). Nil until the first Plan/Validate/mutation; see engine.go.
	track *tracker
}

// NewAnalysis builds an Analysis around an item with the standard's
// default models installed.
func NewAnalysis(item *Item) *Analysis {
	return &Analysis{
		Item:           item,
		VectorModel:    StandardVectorTable(),
		PotentialModel: StandardPotentialWeights(),
		PotentialBands: StandardPotentialThresholds(),
		Matrix:         StandardRiskMatrix(),
		CALModel:       StandardCALTable(),
	}
}

// AddDamage registers a damage scenario. The builder methods perform no
// validation; they drop any engine state so the next run revalidates.
// Incremental model maintenance should use UpsertDamage instead.
func (a *Analysis) AddDamage(d *DamageScenario) *Analysis {
	a.Damages = append(a.Damages, d)
	a.track = nil
	return a
}

// AddThreat registers a threat scenario. See AddDamage for the builder
// contract; the incremental counterpart is UpsertThreat.
func (a *Analysis) AddThreat(t *ThreatScenario) *Analysis {
	a.Threats = append(a.Threats, t)
	a.track = nil
	return a
}

// AddPath registers an attack path. See AddDamage for the builder
// contract; the incremental counterpart is UpsertPath.
func (a *Analysis) AddPath(p *AttackPath) *Analysis {
	a.Paths = append(a.Paths, p)
	a.track = nil
	return a
}

// Validate cross-checks the whole analysis: item and element validity,
// unique IDs, and referential integrity between threats, damages, assets
// and paths. The check is a single map-backed pass (the old
// implementation was quadratic in the element counts); when it passes,
// the resulting index is kept to serve Plan and the ID lookups, without
// discarding dirty-tracking state the analysis already carries.
func (a *Analysis) Validate() error {
	idx, err := buildIndex(a)
	if err != nil {
		a.track = nil
		return err
	}
	if tr := a.track; tr != nil && tr.structureMatches(a) {
		tr.idx = idx
		return nil
	}
	a.track = newTracker(a, idx, a.track)
	return nil
}

// lookupIndex returns the engine index when it plausibly reflects the
// analysis' current structure, for O(1) ID lookups.
func (a *Analysis) lookupIndex() *analysisIndex {
	if tr := a.track; tr != nil && tr.quickMatch(a) {
		return tr.idx
	}
	return nil
}

// Damage returns the damage scenario with the given ID, or nil.
func (a *Analysis) Damage(id string) *DamageScenario {
	if idx := a.lookupIndex(); idx != nil {
		return idx.damages[id]
	}
	for _, d := range a.Damages {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Threat returns the threat scenario with the given ID, or nil.
func (a *Analysis) Threat(id string) *ThreatScenario {
	if idx := a.lookupIndex(); idx != nil {
		return idx.threats[id]
	}
	for _, t := range a.Threats {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// PathsFor returns the attack paths linked to a threat scenario, in
// registration order. The returned slice must not be modified.
func (a *Analysis) PathsFor(threatID string) []*AttackPath {
	if idx := a.lookupIndex(); idx != nil {
		return idx.pathsByThreat[threatID]
	}
	var out []*AttackPath
	for _, p := range a.Paths {
		if p.ThreatID == threatID {
			out = append(out, p)
		}
	}
	return out
}

// ThreatResult is the per-threat outcome of a risk determination run.
type ThreatResult struct {
	Threat *ThreatScenario
	// Impact is the overall impact across the linked damage scenarios
	// (maximum of their overall ratings).
	Impact ImpactRating
	// Feasibility is the combined attack feasibility across the threat's
	// paths (or the threat's declared vector if it has no paths).
	Feasibility FeasibilityRating
	// Risk is the matrix cell for Impact × Feasibility.
	Risk RiskValue
	// Treatment is the suggested risk treatment for Risk.
	Treatment TreatmentOption
	// CAL is the assurance level determined from Impact and the threat's
	// dominant attack vector.
	CAL CAL
	// DominantVector is the vector that drove the feasibility rating.
	DominantVector AttackVector
}

// Run validates the analysis and determines impact, feasibility, risk,
// treatment and CAL for every threat scenario. Results are sorted by
// descending risk value, then by threat ID for determinism.
//
// Run is incremental: only threats marked dirty since the previous run
// (by the Upsert*/Remove*/Set* mutation API, or by a detected model
// swap) are re-rated; clean threats reuse their memoized results
// byte-identically. A failed run keeps the dirty set intact so the next
// run retries the same threats.
func (a *Analysis) Run() ([]*ThreatResult, error) {
	p, err := a.Plan()
	if err != nil {
		return nil, err
	}
	rated := make([]*ThreatResult, len(p.Dirty))
	for i, id := range p.Dirty {
		r, err := p.Rate(id)
		if err != nil {
			return nil, err
		}
		rated[i] = r
	}
	return p.Commit(rated)
}

func pathHasPotential(p *AttackPath) bool {
	for _, s := range p.Steps {
		if s.Potential != nil {
			return true
		}
	}
	return false
}
