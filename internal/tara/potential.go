package tara

import (
	"errors"
	"fmt"
)

// The attack potential-based approach (ISO/SAE 21434 Annex G.2, derived
// from ISO/IEC 18045) rates feasibility from five core parameters. Each
// parameter level carries a fixed weight (Fig. 3 of the paper); the sum of
// the weights is the attack potential value, and the value maps onto the
// feasibility rating: the *lower* the required potential, the *higher* the
// attack feasibility.

// ElapsedTime is the time an attacker needs to identify and exploit the
// vulnerability.
type ElapsedTime int

// Elapsed time levels.
const (
	TimeOneDay ElapsedTime = iota + 1 // up to one day
	TimeOneWeek
	TimeOneMonth
	TimeSixMonths
	TimeBeyondSixMonths
)

// SpecialistExpertise is the level of generic and item-specific skill the
// attacker requires.
type SpecialistExpertise int

// Specialist expertise levels.
const (
	ExpertiseLayman SpecialistExpertise = iota + 1
	ExpertiseProficient
	ExpertiseExpert
	ExpertiseMultipleExperts
)

// ItemKnowledge is the amount of restricted design information required.
type ItemKnowledge int

// Knowledge of the item or component levels.
const (
	KnowledgePublic ItemKnowledge = iota + 1
	KnowledgeRestricted
	KnowledgeConfidential
	KnowledgeStrictlyConfidential
)

// WindowOfOpportunity is the access condition the attack requires
// (combining access type and access duration).
type WindowOfOpportunity int

// Window of opportunity levels.
const (
	WindowUnlimited WindowOfOpportunity = iota + 1
	WindowEasy
	WindowModerate
	WindowDifficult
)

// Equipment is the tooling required to identify or exploit the
// vulnerability.
type Equipment int

// Equipment levels.
const (
	EquipmentStandard Equipment = iota + 1
	EquipmentSpecialized
	EquipmentBespoke
	EquipmentMultipleBespoke
)

// AttackPotentialWeights carries the per-level weights of the five core
// parameters. StandardPotentialWeights returns the fixed values of the
// standard; PSP generates tuned instances.
type AttackPotentialWeights struct {
	Name string

	ElapsedTime map[ElapsedTime]int
	Expertise   map[SpecialistExpertise]int
	Knowledge   map[ItemKnowledge]int
	Window      map[WindowOfOpportunity]int
	Equipment   map[Equipment]int
}

// StandardPotentialWeights returns the fixed weight model of
// ISO/SAE 21434 Annex G.2 (Fig. 3 of the paper).
func StandardPotentialWeights() *AttackPotentialWeights {
	return &AttackPotentialWeights{
		Name: "ISO/SAE 21434 G.2 (attack potential-based)",
		ElapsedTime: map[ElapsedTime]int{
			TimeOneDay:          0,
			TimeOneWeek:         1,
			TimeOneMonth:        4,
			TimeSixMonths:       17,
			TimeBeyondSixMonths: 19,
		},
		Expertise: map[SpecialistExpertise]int{
			ExpertiseLayman:          0,
			ExpertiseProficient:      3,
			ExpertiseExpert:          6,
			ExpertiseMultipleExperts: 8,
		},
		Knowledge: map[ItemKnowledge]int{
			KnowledgePublic:               0,
			KnowledgeRestricted:           3,
			KnowledgeConfidential:         7,
			KnowledgeStrictlyConfidential: 11,
		},
		Window: map[WindowOfOpportunity]int{
			WindowUnlimited: 0,
			WindowEasy:      1,
			WindowModerate:  4,
			WindowDifficult: 10,
		},
		Equipment: map[Equipment]int{
			EquipmentStandard:        0,
			EquipmentSpecialized:     4,
			EquipmentBespoke:         7,
			EquipmentMultipleBespoke: 9,
		},
	}
}

// AttackPotentialInput is one attack path profile to be rated by the
// attack potential-based approach.
type AttackPotentialInput struct {
	Time      ElapsedTime
	Expertise SpecialistExpertise
	Knowledge ItemKnowledge
	Window    WindowOfOpportunity
	Equipment Equipment
}

// Validate reports the first invalid parameter, if any.
func (in AttackPotentialInput) Validate() error {
	switch {
	case in.Time < TimeOneDay || in.Time > TimeBeyondSixMonths:
		return fmt.Errorf("tara: invalid elapsed time level %d", int(in.Time))
	case in.Expertise < ExpertiseLayman || in.Expertise > ExpertiseMultipleExperts:
		return fmt.Errorf("tara: invalid expertise level %d", int(in.Expertise))
	case in.Knowledge < KnowledgePublic || in.Knowledge > KnowledgeStrictlyConfidential:
		return fmt.Errorf("tara: invalid knowledge level %d", int(in.Knowledge))
	case in.Window < WindowUnlimited || in.Window > WindowDifficult:
		return fmt.Errorf("tara: invalid window of opportunity level %d", int(in.Window))
	case in.Equipment < EquipmentStandard || in.Equipment > EquipmentMultipleBespoke:
		return fmt.Errorf("tara: invalid equipment level %d", int(in.Equipment))
	}
	return nil
}

// ErrIncompleteWeights is returned when a weights model misses a level.
var ErrIncompleteWeights = errors.New("tara: incomplete attack potential weights")

// Potential sums the five parameter weights for the given input, returning
// the attack potential value required to mount the attack.
func (w *AttackPotentialWeights) Potential(in AttackPotentialInput) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	t, ok := w.ElapsedTime[in.Time]
	if !ok {
		return 0, fmt.Errorf("%w: elapsed time level %d", ErrIncompleteWeights, int(in.Time))
	}
	e, ok := w.Expertise[in.Expertise]
	if !ok {
		return 0, fmt.Errorf("%w: expertise level %d", ErrIncompleteWeights, int(in.Expertise))
	}
	k, ok := w.Knowledge[in.Knowledge]
	if !ok {
		return 0, fmt.Errorf("%w: knowledge level %d", ErrIncompleteWeights, int(in.Knowledge))
	}
	wo, ok := w.Window[in.Window]
	if !ok {
		return 0, fmt.Errorf("%w: window level %d", ErrIncompleteWeights, int(in.Window))
	}
	q, ok := w.Equipment[in.Equipment]
	if !ok {
		return 0, fmt.Errorf("%w: equipment level %d", ErrIncompleteWeights, int(in.Equipment))
	}
	return t + e + k + wo + q, nil
}

// PotentialThresholds maps an attack potential value onto a feasibility
// rating. The standard's mapping (Annex G.2): values 0–13 → High,
// 14–19 → Medium, 20–24 → Low, ≥25 → Very Low.
type PotentialThresholds struct {
	// HighMax, MediumMax and LowMax are the inclusive upper bounds of the
	// High, Medium and Low rating bands; anything above LowMax rates
	// Very Low.
	HighMax   int
	MediumMax int
	LowMax    int
}

// StandardPotentialThresholds returns the standard's value → rating bands.
func StandardPotentialThresholds() PotentialThresholds {
	return PotentialThresholds{HighMax: 13, MediumMax: 19, LowMax: 24}
}

// Validate checks that the bands are monotonically ordered.
func (p PotentialThresholds) Validate() error {
	if p.HighMax < 0 || p.MediumMax <= p.HighMax || p.LowMax <= p.MediumMax {
		return fmt.Errorf("tara: invalid potential thresholds %+v", p)
	}
	return nil
}

// Rating maps an attack potential value onto the feasibility rating.
func (p PotentialThresholds) Rating(potential int) FeasibilityRating {
	switch {
	case potential <= p.HighMax:
		return FeasibilityHigh
	case potential <= p.MediumMax:
		return FeasibilityMedium
	case potential <= p.LowMax:
		return FeasibilityLow
	default:
		return FeasibilityVeryLow
	}
}

// RatePotential runs the full attack potential-based approach: weight
// aggregation followed by threshold mapping.
func RatePotential(w *AttackPotentialWeights, th PotentialThresholds, in AttackPotentialInput) (FeasibilityRating, error) {
	if err := th.Validate(); err != nil {
		return 0, err
	}
	v, err := w.Potential(in)
	if err != nil {
		return 0, err
	}
	return th.Rating(v), nil
}
