package tara

import (
	"testing"
	"testing/quick"
)

func TestStandardVectorTableMatchesG9(t *testing.T) {
	// Fig. 5 / Fig. 9-A of the paper: the fixed G.9 assignment.
	want := map[AttackVector]FeasibilityRating{
		VectorNetwork:  FeasibilityHigh,
		VectorAdjacent: FeasibilityMedium,
		VectorLocal:    FeasibilityLow,
		VectorPhysical: FeasibilityVeryLow,
	}
	tbl := StandardVectorTable()
	for v, wantR := range want {
		got, err := tbl.Rating(v)
		if err != nil {
			t.Fatalf("Rating(%s): %v", v, err)
		}
		if got != wantR {
			t.Errorf("G.9 rating for %s = %v, want %v", v, got, wantR)
		}
	}
}

func TestStandardVectorTableRanking(t *testing.T) {
	// The static table always ranks remote vectors as most feasible —
	// the behaviour the paper calls misleading for powertrain scenarios.
	ranked := StandardVectorTable().RankedVectors()
	want := []AttackVector{VectorNetwork, VectorAdjacent, VectorLocal, VectorPhysical}
	for i, v := range want {
		if ranked[i] != v {
			t.Fatalf("RankedVectors()[%d] = %s, want %s (full: %v)", i, ranked[i], v, ranked)
		}
	}
}

func TestNewVectorTableRejectsIncomplete(t *testing.T) {
	_, err := NewVectorTable("partial", map[AttackVector]FeasibilityRating{
		VectorNetwork: FeasibilityHigh,
	})
	if err == nil {
		t.Fatal("NewVectorTable with a single vector succeeded, want error")
	}
}

func TestNewVectorTableRejectsInvalidRating(t *testing.T) {
	_, err := NewVectorTable("broken", map[AttackVector]FeasibilityRating{
		VectorNetwork:  FeasibilityHigh,
		VectorAdjacent: FeasibilityMedium,
		VectorLocal:    FeasibilityLow,
		VectorPhysical: FeasibilityRating(42),
	})
	if err == nil {
		t.Fatal("NewVectorTable with invalid rating succeeded, want error")
	}
}

func TestNewVectorTableRejectsEmpty(t *testing.T) {
	if _, err := NewVectorTable("empty", nil); err == nil {
		t.Fatal("NewVectorTable(nil) succeeded, want error")
	}
}

func TestVectorTableIsolation(t *testing.T) {
	// Mutating the input map after construction must not affect the table.
	in := map[AttackVector]FeasibilityRating{
		VectorNetwork:  FeasibilityHigh,
		VectorAdjacent: FeasibilityMedium,
		VectorLocal:    FeasibilityLow,
		VectorPhysical: FeasibilityVeryLow,
	}
	tbl, err := NewVectorTable("iso", in)
	if err != nil {
		t.Fatal(err)
	}
	in[VectorNetwork] = FeasibilityVeryLow
	if got, _ := tbl.Rating(VectorNetwork); got != FeasibilityHigh {
		t.Errorf("table aliased its input map: Rating(Network) = %v", got)
	}
	// Mutating the Ratings() copy must not affect the table either.
	out := tbl.Ratings()
	out[VectorPhysical] = FeasibilityHigh
	if got, _ := tbl.Rating(VectorPhysical); got != FeasibilityVeryLow {
		t.Errorf("Ratings() exposed internal state: Rating(Physical) = %v", got)
	}
}

func TestVectorTableEqual(t *testing.T) {
	a := StandardVectorTable()
	b := StandardVectorTable()
	b.Name = "same ratings, different name"
	if !a.Equal(b) {
		t.Error("tables with identical ratings compare unequal")
	}
	c, err := NewVectorTable("flipped", map[AttackVector]FeasibilityRating{
		VectorNetwork:  FeasibilityVeryLow,
		VectorAdjacent: FeasibilityLow,
		VectorLocal:    FeasibilityMedium,
		VectorPhysical: FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("G.9 compares equal to its inversion")
	}
	if a.Equal(nil) {
		t.Error("table compares equal to nil")
	}
}

func TestParseVector(t *testing.T) {
	tests := []struct {
		in      string
		want    AttackVector
		wantErr bool
	}{
		{"physical", VectorPhysical, false},
		{"Physical", VectorPhysical, false},
		{"local", VectorLocal, false},
		{"adjacent", VectorAdjacent, false},
		{"adjacent network", VectorAdjacent, false},
		{"network", VectorNetwork, false},
		{"remote", VectorNetwork, false},
		{"n", VectorNetwork, false},
		{"", 0, true},
		{"wifi", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseVector(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseVector(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseVector(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAllVectorsOrder(t *testing.T) {
	vs := AllVectors()
	if len(vs) != 4 {
		t.Fatalf("AllVectors() returned %d vectors, want 4", len(vs))
	}
	want := []AttackVector{VectorPhysical, VectorLocal, VectorAdjacent, VectorNetwork}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("AllVectors()[%d] = %s, want %s", i, vs[i], want[i])
		}
	}
}

// Property: RankedVectors is always a permutation of the four vectors and
// is sorted by non-increasing rating, for any complete table.
func TestRankedVectorsProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		clamp := func(x uint8) FeasibilityRating {
			return FeasibilityRating(int(x)%4) + FeasibilityVeryLow
		}
		tbl, err := NewVectorTable("prop", map[AttackVector]FeasibilityRating{
			VectorPhysical: clamp(a),
			VectorLocal:    clamp(b),
			VectorAdjacent: clamp(c),
			VectorNetwork:  clamp(d),
		})
		if err != nil {
			return false
		}
		ranked := tbl.RankedVectors()
		if len(ranked) != 4 {
			return false
		}
		seen := map[AttackVector]bool{}
		for _, v := range ranked {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for i := 1; i < len(ranked); i++ {
			ri, _ := tbl.Rating(ranked[i])
			rp, _ := tbl.Rating(ranked[i-1])
			if rp < ri {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
