package tara

import (
	"encoding/json"
	"fmt"
	"io"
)

// Op is one mutation of an Analysis in the versioned tenant mutation
// API. Ops have a stable JSON form built from the same document types as
// the analysis wire format, so the same enumeration spellings work in
// both places.
type Op struct {
	// Kind selects the mutation.
	Kind OpKind
	// Asset, Damage, Threat, Path carry the entity for the upsert kinds.
	Asset  *Asset
	Damage *DamageScenario
	Threat *ThreatScenario
	Path   *AttackPath
	// ID names the entity for the remove kinds, and the threat for
	// set_threat_table.
	ID string
	// Table is the vector table for set_vector_model and
	// set_threat_table (nil clears a per-threat override).
	Table *VectorTable
}

// OpKind enumerates the mutation kinds.
type OpKind string

// Mutation kinds.
const (
	OpUpsertAsset    OpKind = "upsert_asset"
	OpRemoveAsset    OpKind = "remove_asset"
	OpUpsertDamage   OpKind = "upsert_damage"
	OpRemoveDamage   OpKind = "remove_damage"
	OpUpsertThreat   OpKind = "upsert_threat"
	OpRemoveThreat   OpKind = "remove_threat"
	OpUpsertPath     OpKind = "upsert_path"
	OpRemovePath     OpKind = "remove_path"
	OpSetVectorModel OpKind = "set_vector_model"
	OpSetThreatTable OpKind = "set_threat_table"
)

// opDoc is the wire form of an Op.
type opDoc struct {
	Op     string          `json:"op"`
	Asset  *assetDoc       `json:"asset,omitempty"`
	Damage *damageDoc      `json:"damage,omitempty"`
	Threat *threatDoc      `json:"threat,omitempty"`
	Path   *pathDoc        `json:"path,omitempty"`
	ID     string          `json:"id,omitempty"`
	Table  *vectorTableDoc `json:"table,omitempty"`
}

// MarshalJSON serializes the op in its wire form.
func (o Op) MarshalJSON() ([]byte, error) {
	doc := &opDoc{Op: string(o.Kind), ID: o.ID}
	if o.Asset != nil {
		doc.Asset = encodeAsset(o.Asset)
	}
	if o.Damage != nil {
		doc.Damage = encodeDamage(o.Damage)
	}
	if o.Threat != nil {
		doc.Threat = encodeThreat(o.Threat)
	}
	if o.Path != nil {
		doc.Path = encodePath(o.Path)
	}
	if o.Table != nil {
		doc.Table = encodeVectorTable(o.Table)
	}
	return json.Marshal(doc)
}

// UnmarshalJSON parses the wire form.
func (o *Op) UnmarshalJSON(data []byte) error {
	var doc opDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	out := Op{Kind: OpKind(doc.Op), ID: doc.ID}
	if doc.Asset != nil {
		as, err := decodeAsset(doc.Asset)
		if err != nil {
			return err
		}
		out.Asset = as
	}
	if doc.Damage != nil {
		d, err := decodeDamage(doc.Damage)
		if err != nil {
			return err
		}
		out.Damage = d
	}
	if doc.Threat != nil {
		t, err := decodeThreat(doc.Threat)
		if err != nil {
			return err
		}
		out.Threat = t
	}
	if doc.Path != nil {
		p, err := decodePath(doc.Path)
		if err != nil {
			return err
		}
		out.Path = p
	}
	if doc.Table != nil {
		tbl, err := decodeVectorTable(doc.Table)
		if err != nil {
			return err
		}
		out.Table = tbl
	}
	*o = out
	return nil
}

// DecodeOps parses a JSON array of mutation ops.
func DecodeOps(r io.Reader) ([]Op, error) {
	var ops []Op
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return nil, fmt.Errorf("tara: decode ops: %w", err)
	}
	return ops, nil
}

// Apply performs the op against the analysis.
func (o Op) Apply(a *Analysis) error {
	switch o.Kind {
	case OpUpsertAsset:
		if o.Asset == nil {
			return fmt.Errorf("tara: %s without asset", o.Kind)
		}
		return a.UpsertAsset(o.Asset)
	case OpRemoveAsset:
		return a.RemoveAsset(o.ID)
	case OpUpsertDamage:
		if o.Damage == nil {
			return fmt.Errorf("tara: %s without damage scenario", o.Kind)
		}
		return a.UpsertDamage(o.Damage)
	case OpRemoveDamage:
		return a.RemoveDamage(o.ID)
	case OpUpsertThreat:
		if o.Threat == nil {
			return fmt.Errorf("tara: %s without threat scenario", o.Kind)
		}
		return a.UpsertThreat(o.Threat)
	case OpRemoveThreat:
		return a.RemoveThreat(o.ID)
	case OpUpsertPath:
		if o.Path == nil {
			return fmt.Errorf("tara: %s without attack path", o.Kind)
		}
		return a.UpsertPath(o.Path)
	case OpRemovePath:
		return a.RemovePath(o.ID)
	case OpSetVectorModel:
		if o.Table == nil {
			return fmt.Errorf("tara: %s without table", o.Kind)
		}
		return a.SetVectorModel(o.Table)
	case OpSetThreatTable:
		_, err := a.SetThreatTable(o.ID, o.Table)
		return err
	default:
		return fmt.Errorf("tara: unknown op kind %q", o.Kind)
	}
}

// ApplyOps applies the ops in order, stopping at the first failure. It
// returns how many ops were applied; on error the applied prefix remains
// in effect (each op leaves the analysis valid), matching the partial
// batch semantics of the social ingest API.
func ApplyOps(a *Analysis, ops []Op) (int, error) {
	for i, op := range ops {
		if err := op.Apply(a); err != nil {
			return i, fmt.Errorf("tara: op %d (%s): %w", i, op.Kind, err)
		}
	}
	return len(ops), nil
}
