package tara

import (
	"fmt"
	"sort"
)

// CybersecurityGoal is a concept-level requirement derived from a risk
// determination (ISO/SAE 21434 §9.4): every threat whose risk exceeds
// the retention threshold yields a goal with a CAL, unless the risk is
// shared or avoided by other means.
type CybersecurityGoal struct {
	// ID is derived from the threat scenario ("CG-TS-01").
	ID string
	// ThreatID links back to the originating threat scenario.
	ThreatID string
	// Statement is the goal text.
	Statement string
	// CAL is the assurance level assigned to the goal.
	CAL CAL
	// Risk is the risk value that motivated the goal.
	Risk RiskValue
}

// CybersecurityClaim documents a retained or shared risk (§9.4): the
// rationale for not deriving a goal.
type CybersecurityClaim struct {
	// ID is derived from the threat scenario ("CC-TS-02").
	ID string
	// ThreatID links back to the originating threat scenario.
	ThreatID string
	// Rationale explains the retention/sharing decision.
	Rationale string
}

// ConceptOutcome is the §9.4 output: goals for treated risks, claims for
// retained or shared ones.
type ConceptOutcome struct {
	Goals  []CybersecurityGoal
	Claims []CybersecurityClaim
}

// DeriveConcept turns risk-determination results into cybersecurity
// goals and claims. Threats whose suggested treatment is Reduce or Avoid
// produce goals (protect the compromised property of the targeted
// assets); Retain and Share produce claims. Outputs are sorted by ID.
func DeriveConcept(results []*ThreatResult) (*ConceptOutcome, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("tara: no results to derive a concept from")
	}
	out := &ConceptOutcome{}
	for _, r := range results {
		if r == nil || r.Threat == nil {
			return nil, fmt.Errorf("tara: nil result or threat in concept derivation")
		}
		switch r.Treatment {
		case TreatmentReduce, TreatmentAvoid:
			out.Goals = append(out.Goals, CybersecurityGoal{
				ID:       "CG-" + r.Threat.ID,
				ThreatID: r.Threat.ID,
				Statement: fmt.Sprintf(
					"The item shall preserve the %s of its assets against %q (%s via %s access).",
					r.Threat.Property, r.Threat.Name, r.Threat.STRIDE, r.DominantVector),
				CAL:  r.CAL,
				Risk: r.Risk,
			})
		case TreatmentRetain:
			out.Claims = append(out.Claims, CybersecurityClaim{
				ID:       "CC-" + r.Threat.ID,
				ThreatID: r.Threat.ID,
				Rationale: fmt.Sprintf(
					"Risk %s (impact %s × feasibility %s) is within the retention threshold.",
					r.Risk, r.Impact, r.Feasibility),
			})
		case TreatmentShare:
			out.Claims = append(out.Claims, CybersecurityClaim{
				ID:       "CC-" + r.Threat.ID,
				ThreatID: r.Threat.ID,
				Rationale: fmt.Sprintf(
					"Risk %s is shared along the supply chain (contractual cascading per UNR-155).",
					r.Risk),
			})
		default:
			return nil, fmt.Errorf("tara: result for threat %s has invalid treatment %d",
				r.Threat.ID, int(r.Treatment))
		}
	}
	sort.Slice(out.Goals, func(i, j int) bool { return out.Goals[i].ID < out.Goals[j].ID })
	sort.Slice(out.Claims, func(i, j int) bool { return out.Claims[i].ID < out.Claims[j].ID })
	return out, nil
}
