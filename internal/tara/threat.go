package tara

import (
	"fmt"
	"strings"
)

// STRIDECategory classifies a threat scenario by the STRIDE taxonomy used
// in the HEAVENS model referenced by the standard and the paper.
type STRIDECategory int

// STRIDE categories.
const (
	Spoofing STRIDECategory = iota + 1
	Tampering
	Repudiation
	InformationDisclosure
	DenialOfService
	ElevationOfPrivilege
)

var strideNames = map[STRIDECategory]string{
	Spoofing:              "Spoofing",
	Tampering:             "Tampering",
	Repudiation:           "Repudiation",
	InformationDisclosure: "Information Disclosure",
	DenialOfService:       "Denial of Service",
	ElevationOfPrivilege:  "Elevation of Privilege",
}

// String returns the STRIDE category name.
func (s STRIDECategory) String() string {
	if n, ok := strideNames[s]; ok {
		return n
	}
	return fmt.Sprintf("STRIDECategory(%d)", int(s))
}

// Valid reports whether s is a defined STRIDE category.
func (s STRIDECategory) Valid() bool {
	return s >= Spoofing && s <= ElevationOfPrivilege
}

// AttackerProfile classifies the adversary behind a threat scenario,
// following the taxonomy the paper summarizes from the automotive
// security literature (Wolf; LA).
type AttackerProfile int

// Attacker profiles. Insider covers attacks the owner knows about and
// approves, even when executed by third parties (tuning workshops,
// untrusted service); Outsider covers attacks the owner is oblivious to
// (thieves, black hats, competitors).
const (
	ProfileInsider AttackerProfile = iota + 1
	ProfileOutsider
	ProfileRational
	ProfileMalicious
	ProfileActive
	ProfilePassive
	ProfileLocal
	ProfileRemote
)

var profileNames = map[AttackerProfile]string{
	ProfileInsider:   "Insider",
	ProfileOutsider:  "Outsider",
	ProfileRational:  "Rational",
	ProfileMalicious: "Malicious",
	ProfileActive:    "Active",
	ProfilePassive:   "Passive",
	ProfileLocal:     "Local",
	ProfileRemote:    "Remote",
}

// String returns the profile name.
func (p AttackerProfile) String() string {
	if s, ok := profileNames[p]; ok {
		return s
	}
	return fmt.Sprintf("AttackerProfile(%d)", int(p))
}

// Valid reports whether p is a defined attacker profile.
func (p AttackerProfile) Valid() bool {
	return p >= ProfileInsider && p <= ProfileRemote
}

// ThreatScenario is a potential cause of compromise of one or more assets
// leading to a damage scenario (§15.4).
type ThreatScenario struct {
	// ID is a stable identifier unique within an analysis (e.g. "TS-01").
	ID string
	// Name is a short human-readable title ("ECM reprogramming").
	Name string
	// Description narrates how the compromise happens.
	Description string
	// DamageIDs links the threat to the damage scenarios it realizes.
	DamageIDs []string
	// AssetIDs lists the targeted assets.
	AssetIDs []string
	// Property is the compromised cybersecurity property.
	Property SecurityProperty
	// STRIDE classifies the threat.
	STRIDE STRIDECategory
	// Profiles are the plausible attacker profiles for the scenario.
	Profiles []AttackerProfile
	// Vector is the dominant attack vector assumed by the analyst when
	// using the attack vector-based feasibility approach.
	Vector AttackVector
	// Keywords seed the PSP social query for this scenario (e.g.
	// "ecm reprogramming", "#chiptuning"). Optional: an empty list keeps
	// the scenario out of social tuning.
	Keywords []string
}

// Validate checks identifiers, property, STRIDE and vector validity.
func (t *ThreatScenario) Validate() error {
	if strings.TrimSpace(t.ID) == "" {
		return fmt.Errorf("tara: threat scenario with empty ID")
	}
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("tara: threat scenario %s: empty name", t.ID)
	}
	if len(t.DamageIDs) == 0 {
		return fmt.Errorf("tara: threat scenario %s: no damage scenarios linked", t.ID)
	}
	if !t.Property.Valid() {
		return fmt.Errorf("tara: threat scenario %s: invalid security property %d", t.ID, int(t.Property))
	}
	if !t.STRIDE.Valid() {
		return fmt.Errorf("tara: threat scenario %s: invalid STRIDE category %d", t.ID, int(t.STRIDE))
	}
	if !t.Vector.Valid() {
		return fmt.Errorf("tara: threat scenario %s: invalid attack vector %d", t.ID, int(t.Vector))
	}
	for _, p := range t.Profiles {
		if !p.Valid() {
			return fmt.Errorf("tara: threat scenario %s: invalid attacker profile %d", t.ID, int(p))
		}
	}
	return nil
}

// HasProfile reports whether the scenario lists attacker profile p.
func (t *ThreatScenario) HasProfile(p AttackerProfile) bool {
	for _, q := range t.Profiles {
		if q == p {
			return true
		}
	}
	return false
}

// IsInsider reports whether the scenario is owner-approved per the
// paper's definition: it lists the Insider profile, or the Rational and
// Local profiles together.
func (t *ThreatScenario) IsInsider() bool {
	if t.HasProfile(ProfileInsider) {
		return true
	}
	return t.HasProfile(ProfileRational) && t.HasProfile(ProfileLocal)
}
