package tara

import (
	"fmt"
	"sort"
)

// AttackVector is the logical and physical distance an attacker needs to
// the item, as defined by the attack vector-based approach of
// ISO/SAE 21434 Annex G (and by CVSS v3.1). The zero value means
// "unspecified".
type AttackVector int

// Attack vectors, ordered from closest (most physical) to farthest
// (most remote). The standard's G.9 table assigns higher feasibility to
// more remote vectors — the assignment the PSP paper challenges for
// insider-dominated threat scenarios.
const (
	VectorPhysical AttackVector = iota + 1
	VectorLocal
	VectorAdjacent
	VectorNetwork
)

var vectorNames = map[AttackVector]string{
	VectorPhysical: "Physical",
	VectorLocal:    "Local",
	VectorAdjacent: "Adjacent",
	VectorNetwork:  "Network",
}

// String returns the vector name used by the standard.
func (v AttackVector) String() string {
	if s, ok := vectorNames[v]; ok {
		return s
	}
	return fmt.Sprintf("AttackVector(%d)", int(v))
}

// Valid reports whether v is one of the four defined vectors.
func (v AttackVector) Valid() bool {
	return v >= VectorPhysical && v <= VectorNetwork
}

// ParseVector converts a vector name into an AttackVector. Matching is
// case-insensitive.
func ParseVector(s string) (AttackVector, error) {
	switch normalizeName(s) {
	case "physical", "p":
		return VectorPhysical, nil
	case "local", "l":
		return VectorLocal, nil
	case "adjacent", "adjacent network", "a":
		return VectorAdjacent, nil
	case "network", "remote", "n":
		return VectorNetwork, nil
	}
	return 0, fmt.Errorf("tara: unknown attack vector %q", s)
}

// AllVectors returns the four attack vectors in standard order
// (Physical, Local, Adjacent, Network).
func AllVectors() []AttackVector {
	return []AttackVector{VectorPhysical, VectorLocal, VectorAdjacent, VectorNetwork}
}

// VectorTable maps each attack vector to an attack feasibility rating.
// It is the data structure behind table G.9 of ISO/SAE 21434 (Fig. 5 and
// Fig. 9-A of the paper) and behind the PSP-revised replacements of that
// table (Fig. 8-B, Fig. 9-B/C).
type VectorTable struct {
	// Name identifies the table in reports (e.g. "ISO-21434 G.9" or
	// "PSP insider (since 2022)").
	Name string

	ratings map[AttackVector]FeasibilityRating
}

// StandardVectorTable returns the fixed-weight attack vector-based table
// of ISO/SAE 21434 Annex G.9: Network → High, Adjacent → Medium,
// Local → Low, Physical → Very Low.
func StandardVectorTable() *VectorTable {
	return &VectorTable{
		Name: "ISO/SAE 21434 G.9 (attack vector-based)",
		ratings: map[AttackVector]FeasibilityRating{
			VectorNetwork:  FeasibilityHigh,
			VectorAdjacent: FeasibilityMedium,
			VectorLocal:    FeasibilityLow,
			VectorPhysical: FeasibilityVeryLow,
		},
	}
}

// NewVectorTable builds a custom table. Every one of the four vectors must
// be assigned a valid rating.
func NewVectorTable(name string, ratings map[AttackVector]FeasibilityRating) (*VectorTable, error) {
	if len(ratings) == 0 {
		return nil, fmt.Errorf("tara: vector table %q: no ratings", name)
	}
	cp := make(map[AttackVector]FeasibilityRating, len(ratings))
	for _, v := range AllVectors() {
		r, ok := ratings[v]
		if !ok {
			return nil, fmt.Errorf("tara: vector table %q: missing rating for vector %s", name, v)
		}
		if !r.Valid() {
			return nil, fmt.Errorf("tara: vector table %q: invalid rating %d for vector %s", name, int(r), v)
		}
		cp[v] = r
	}
	return &VectorTable{Name: name, ratings: cp}, nil
}

// Rating returns the feasibility rating assigned to vector v.
func (t *VectorTable) Rating(v AttackVector) (FeasibilityRating, error) {
	r, ok := t.ratings[v]
	if !ok {
		return 0, fmt.Errorf("tara: vector table %q: no rating for vector %s", t.Name, v)
	}
	return r, nil
}

// Ratings returns a copy of the full vector → rating assignment.
func (t *VectorTable) Ratings() map[AttackVector]FeasibilityRating {
	cp := make(map[AttackVector]FeasibilityRating, len(t.ratings))
	for v, r := range t.ratings {
		cp[v] = r
	}
	return cp
}

// RankedVectors returns the vectors sorted by descending feasibility
// rating; ties break in standard vector order (Physical first). The first
// element is the vector the table considers most feasible.
func (t *VectorTable) RankedVectors() []AttackVector {
	vs := AllVectors()
	sort.SliceStable(vs, func(i, j int) bool {
		return t.ratings[vs[i]] > t.ratings[vs[j]]
	})
	return vs
}

// Equal reports whether two tables assign identical ratings (names are
// ignored).
func (t *VectorTable) Equal(o *VectorTable) bool {
	if o == nil {
		return false
	}
	for _, v := range AllVectors() {
		if t.ratings[v] != o.ratings[v] {
			return false
		}
	}
	return true
}
