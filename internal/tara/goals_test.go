package tara

import (
	"strings"
	"testing"
)

func TestDeriveConceptSplitsGoalsAndClaims(t *testing.T) {
	results, err := ecmAnalysis().Run()
	if err != nil {
		t.Fatal(err)
	}
	// Static G.9: TS-01 risk R1 → Retain (claim); TS-02 Severe × Very
	// Low = R2 → Reduce (goal).
	outcome, err := DeriveConcept(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Goals) != 1 || len(outcome.Claims) != 1 {
		t.Fatalf("goals/claims = %d/%d, want 1/1", len(outcome.Goals), len(outcome.Claims))
	}
	goal := outcome.Goals[0]
	if goal.ThreatID != "TS-02" || goal.CAL != CAL2 {
		t.Errorf("goal = %+v, want TS-02 at CAL2", goal)
	}
	if !strings.Contains(goal.Statement, "Availability") {
		t.Errorf("goal statement misses the protected property: %s", goal.Statement)
	}
	claim := outcome.Claims[0]
	if claim.ThreatID != "TS-01" || !strings.Contains(claim.Rationale, "retention") {
		t.Errorf("claim = %+v", claim)
	}
}

func TestDeriveConceptWithRetunedWeights(t *testing.T) {
	// Installing the PSP insider table turns the retained ECM
	// reprogramming risk into a shared/reduced one: the claim becomes a
	// goal or a supply-chain share.
	a := ecmAnalysis()
	retuned, err := NewVectorTable("PSP insider", map[AttackVector]FeasibilityRating{
		VectorPhysical: FeasibilityHigh,
		VectorLocal:    FeasibilityMedium,
		VectorAdjacent: FeasibilityLow,
		VectorNetwork:  FeasibilityVeryLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.VectorModel = retuned
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := DeriveConcept(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range outcome.Claims {
		if c.ThreatID == "TS-01" && strings.Contains(c.Rationale, "retention") {
			t.Error("TS-01 still retained despite PSP retuning")
		}
	}
}

func TestDeriveConceptValidation(t *testing.T) {
	if _, err := DeriveConcept(nil); err == nil {
		t.Error("empty results accepted")
	}
	if _, err := DeriveConcept([]*ThreatResult{nil}); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := DeriveConcept([]*ThreatResult{{
		Threat: &ThreatScenario{ID: "TS-X"},
	}}); err == nil {
		t.Error("invalid treatment accepted")
	}
}
