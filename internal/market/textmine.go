package market

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/psp-framework/psp/internal/nlp"
)

// The paper obtains PEA by "analyzing vehicle cybersecurity annual
// reports" with text mining. This file implements that path: free-text
// report documents are scanned for percentage statements near the attack
// category's vocabulary, so the structured AttackerStat entries of
// ReportDB can be cross-checked against (or built from) prose sources.

// ReportDocument is one prose source (an annual report section).
type ReportDocument struct {
	// Title identifies the document ("Global Automotive Cybersecurity
	// Report 2023 §4.2").
	Title string
	// Year is the report year.
	Year int
	// Body is the prose text.
	Body string
}

// ShareMention is one extracted percentage statement.
type ShareMention struct {
	// Share is the percentage as a fraction in [0, 1].
	Share float64
	// Sentence is the sentence the share was found in.
	Sentence string
	// Document is the source document title.
	Document string
	// Year is the source document year.
	Year int
}

// MineAttackerShares scans report documents for percentage statements
// whose sentence mentions every one of the given terms (category and
// application vocabulary, normalized and stemmed). It returns all
// matching mentions in document order.
func MineAttackerShares(docs []ReportDocument, terms []string) ([]ShareMention, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("market: no report documents to mine")
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("market: no terms to mine for")
	}
	stemmed := make([]string, len(terms))
	for i, t := range terms {
		stemmed[i] = nlp.Stem(nlp.Normalize(t))
	}
	var out []ShareMention
	for _, doc := range docs {
		for _, sentence := range splitSentences(doc.Body) {
			share, ok := extractPercent(sentence)
			if !ok {
				continue
			}
			if !sentenceMentionsAll(sentence, stemmed) {
				continue
			}
			out = append(out, ShareMention{
				Share:    share,
				Sentence: strings.TrimSpace(sentence),
				Document: doc.Title,
				Year:     doc.Year,
			})
		}
	}
	return out, nil
}

// MinePEA reduces the mentions for a (category terms, application) query
// to one PEA estimate: the most recent year wins; within a year, the
// median mention is used to resist outlier sentences.
func MinePEA(docs []ReportDocument, terms []string) (float64, error) {
	mentions, err := MineAttackerShares(docs, terms)
	if err != nil {
		return 0, err
	}
	if len(mentions) == 0 {
		return 0, fmt.Errorf("market: no share statements found for terms %v", terms)
	}
	bestYear := mentions[0].Year
	for _, m := range mentions {
		if m.Year > bestYear {
			bestYear = m.Year
		}
	}
	var shares []float64
	for _, m := range mentions {
		if m.Year == bestYear {
			shares = append(shares, m.Share)
		}
	}
	return nlp.Median(shares), nil
}

// splitSentences breaks prose into sentences on ./!/? boundaries.
func splitSentences(body string) []string {
	var out []string
	var current strings.Builder
	for _, r := range body {
		current.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			if s := strings.TrimSpace(current.String()); s != "" {
				out = append(out, s)
			}
			current.Reset()
		}
	}
	if s := strings.TrimSpace(current.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// extractPercent finds the first "N%" or "N percent" figure in a
// sentence and returns it as a fraction.
func extractPercent(sentence string) (float64, bool) {
	fields := strings.Fields(strings.ToLower(sentence))
	for i, f := range fields {
		f = strings.Trim(f, ".,;:()")
		if strings.HasSuffix(f, "%") {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(f, "%"), 64); err == nil && v > 0 && v <= 100 {
				return v / 100, true
			}
		}
		if (f == "percent" || f == "per-cent") && i > 0 {
			prev := strings.Trim(fields[i-1], ".,;:()")
			if v, err := strconv.ParseFloat(prev, 64); err == nil && v > 0 && v <= 100 {
				return v / 100, true
			}
		}
	}
	return 0, false
}

// sentenceMentionsAll reports whether the sentence's stemmed vocabulary
// covers every stemmed term.
func sentenceMentionsAll(sentence string, stemmedTerms []string) bool {
	words := map[string]bool{}
	for _, tok := range nlp.Tokenize(sentence) {
		if tok.Kind == nlp.TokenWord || tok.Kind == nlp.TokenHashtag {
			words[nlp.Stem(nlp.Normalize(tok.Text))] = true
		}
	}
	for _, t := range stemmedTerms {
		if !words[t] {
			return false
		}
	}
	return true
}

// DefaultReportDocuments returns the prose sources behind the built-in
// AttackerStat entries; text mining them must reproduce the structured
// figures (the calibration test asserts this).
func DefaultReportDocuments() []ReportDocument {
	return []ReportDocument{
		{
			Title: "Global Automotive Cybersecurity Report 2023 — Off-Highway",
			Year:  2022,
			Body: `Aftermarket emission tampering remains the dominant insider threat in
the off-highway segment. Our fleet telemetry indicates that 5% of
excavator operators in Europe are potential adopters of DPF tampering
devices. Tampering occurrences on tracked excavators grew for the third
consecutive year. For heavy trucks the corresponding DPF tampering
propensity is 3% of operators. Enforcement actions remain rare.`,
		},
		{
			Title: "Global Automotive Cybersecurity Report 2023 — Passenger",
			Year:  2022,
			Body: `Chip tuning communities keep growing. We estimate 2% of passenger car
owners as potential customers of ECM reprogramming services. AdBlue
emulator adoption reaches 4% of truck operators in Europe. Keyless
theft incidents rose 18% year over year, but remain outsider-driven.`,
		},
	}
}
