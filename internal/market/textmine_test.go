package market

import (
	"math"
	"strings"
	"testing"
)

func TestMinePEAReproducesStructuredFigures(t *testing.T) {
	docs := DefaultReportDocuments()
	ds := mustDataset(t)
	cases := []struct {
		name        string
		terms       []string
		category    string
		application string
	}{
		{"excavator DPF", []string{"dpf", "tampering", "excavator"}, CategoryDPFTampering, "excavator"},
		{"truck DPF", []string{"dpf", "tampering", "truck"}, CategoryDPFTampering, "truck"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mined, err := MinePEA(docs, tc.terms)
			if err != nil {
				t.Fatal(err)
			}
			structured, err := ds.Reports.PEA(tc.category, tc.application, "EU", 2022)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mined-structured) > 1e-9 {
				t.Errorf("mined PEA %.4f != structured %.4f", mined, structured)
			}
		})
	}
}

func TestMineAttackerSharesSelectivity(t *testing.T) {
	docs := DefaultReportDocuments()
	// "excavator" + "dpf" matches exactly one sentence.
	mentions, err := MineAttackerShares(docs, []string{"excavator", "dpf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mentions) != 1 {
		t.Fatalf("mentions = %d, want 1: %+v", len(mentions), mentions)
	}
	m := mentions[0]
	if m.Share != 0.05 || m.Year != 2022 {
		t.Errorf("mention = %+v", m)
	}
	if !strings.Contains(m.Sentence, "5%") {
		t.Errorf("sentence lost: %q", m.Sentence)
	}
	// A term that never co-occurs with a percentage yields nothing.
	none, err := MineAttackerShares(docs, []string{"submarine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unexpected mentions: %+v", none)
	}
}

func TestMinePEAErrors(t *testing.T) {
	if _, err := MinePEA(nil, []string{"x"}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := MinePEA(DefaultReportDocuments(), nil); err == nil {
		t.Error("empty terms accepted")
	}
	if _, err := MinePEA(DefaultReportDocuments(), []string{"submarine"}); err == nil {
		t.Error("no-match query should error")
	}
}

func TestMinePEAPrefersRecentYearAndMedian(t *testing.T) {
	docs := []ReportDocument{
		{Title: "old", Year: 2020, Body: "We saw 9% of excavator operators adopting dpf tampering."},
		{Title: "new-a", Year: 2022, Body: "Now 4% of excavator operators adopt dpf tampering."},
		{Title: "new-b", Year: 2022, Body: "Another survey puts dpf tampering among excavator operators at 6%."},
		{Title: "new-c", Year: 2022, Body: "A third estimate: 5% of excavator operators consider dpf tampering."},
	}
	pea, err := MinePEA(docs, []string{"excavator", "dpf"})
	if err != nil {
		t.Fatal(err)
	}
	// 2020's 9% is ignored; median of {4%, 6%, 5%} = 5%.
	if math.Abs(pea-0.05) > 1e-9 {
		t.Errorf("PEA = %.4f, want 0.05", pea)
	}
}

func TestExtractPercentForms(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"around 5% of operators", 0.05, true},
		{"around 5 percent of operators", 0.05, true},
		{"grew by 12.5% overall", 0.125, true},
		{"(3%) in parentheses", 0.03, true},
		{"no figures here", 0, false},
		{"the 0% case is rejected", 0, false},
		{"a 250% claim is rejected", 0, false},
	}
	for _, tt := range tests {
		got, ok := extractPercent(tt.in)
		if ok != tt.ok || math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("extractPercent(%q) = %.4f,%v want %.4f,%v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	got := splitSentences("One. Two! Three? Four")
	if len(got) != 4 {
		t.Errorf("sentences = %v", got)
	}
	if len(splitSentences("")) != 0 {
		t.Error("empty body should yield no sentences")
	}
}
