package market

import (
	"fmt"
	"sort"
	"strings"

	"github.com/psp-framework/psp/internal/nlp"
)

// Listing is one marketplace advertisement for an adversary device or
// service (defeat device, emulator, tuning service, installation).
type Listing struct {
	// ID is unique within a corpus.
	ID string
	// Category is the attack topic key the listing serves
	// ("dpf-tampering", "ecm-reprogramming", ...).
	Category string
	// Vendor is the selling entity.
	Vendor string
	// Region is the market region code.
	Region string
	// Kind distinguishes finished products ("device"), professional
	// services ("service") and raw components ("component").
	Kind string
	// Text is the free-text advertisement the NLP layer mines; it must
	// contain the price.
	Text string
}

// Validate checks the listing invariants.
func (l *Listing) Validate() error {
	if strings.TrimSpace(l.ID) == "" || strings.TrimSpace(l.Category) == "" ||
		strings.TrimSpace(l.Vendor) == "" {
		return fmt.Errorf("market: listing with empty id/category/vendor: %+v", l)
	}
	switch l.Kind {
	case "device", "service", "component":
	default:
		return fmt.Errorf("market: listing %s: unknown kind %q", l.ID, l.Kind)
	}
	if len(nlp.ExtractPrices(l.Text)) == 0 {
		return fmt.Errorf("market: listing %s: no extractable price in text", l.ID)
	}
	return nil
}

// ListingsDB is the marketplace-listings corpus.
type ListingsDB struct {
	listings []*Listing
}

// NewListingsDB builds a corpus, validating every listing.
func NewListingsDB(listings []*Listing) (*ListingsDB, error) {
	db := &ListingsDB{}
	for _, l := range listings {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		db.listings = append(db.listings, l)
	}
	return db, nil
}

// Len returns the number of listings.
func (db *ListingsDB) Len() int { return len(db.listings) }

// Select returns the listings matching a category, region and kind; empty
// strings match everything.
func (db *ListingsDB) Select(category, region, kind string) []*Listing {
	var out []*Listing
	for _, l := range db.listings {
		if category != "" && normKey(l.Category) != normKey(category) {
			continue
		}
		if region != "" && normKey(l.Region) != normKey(region) {
			continue
		}
		if kind != "" && l.Kind != kind {
			continue
		}
		out = append(out, l)
	}
	return out
}

// SelectKinds returns the listings matching a category and region whose
// kind is any of kinds. It is the selection the PPIA survey uses: the
// paper clusters "adversary devices or services" together, excluding raw
// components.
func (db *ListingsDB) SelectKinds(category, region string, kinds ...string) []*Listing {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []*Listing
	for _, l := range db.Select(category, region, "") {
		if len(want) == 0 || want[l.Kind] {
			out = append(out, l)
		}
	}
	return out
}

// PriceSurvey is the result of mining a listing selection.
type PriceSurvey struct {
	// Prices are all extracted prices in currency units.
	Prices []float64
	// Clusters are the k-means price bands, ascending by center.
	Clusters []nlp.Cluster
	// Dominant is the most-populated cluster — the market's price anchor.
	Dominant nlp.Cluster
	// Vendors maps each vendor to its listing count within the dominant
	// cluster's price band.
	Vendors map[string]int
	// Listings is the number of listings mined.
	Listings int
}

// CompetitorCount returns the number of distinct vendors operating in
// the dominant price band — the n term of Equation 3.
func (s *PriceSurvey) CompetitorCount() int { return len(s.Vendors) }

// MinePrices extracts and clusters prices for a listing selection. k is
// the number of price bands (the paper's clustering of "adversary devices
// or services found online based on their prices"); k is capped by the
// number of extracted prices.
func MinePrices(listings []*Listing, k int) (*PriceSurvey, error) {
	if len(listings) == 0 {
		return nil, fmt.Errorf("market: no listings to mine")
	}
	if k < 1 {
		return nil, fmt.Errorf("market: invalid price cluster count %d", k)
	}
	type priced struct {
		vendor string
		price  float64
	}
	var all []priced
	var prices []float64
	for _, l := range listings {
		for _, m := range nlp.ExtractPrices(l.Text) {
			all = append(all, priced{vendor: l.Vendor, price: m.Amount})
			prices = append(prices, m.Amount)
		}
	}
	if len(prices) == 0 {
		return nil, fmt.Errorf("market: no prices extracted from %d listings", len(listings))
	}
	if k > len(prices) {
		k = len(prices)
	}
	clusters, err := nlp.KMeans1D(prices, k, 0)
	if err != nil {
		return nil, fmt.Errorf("market: cluster prices: %w", err)
	}
	dominant, err := nlp.DominantCluster(clusters)
	if err != nil {
		return nil, err
	}
	lo := dominant.Values[0]
	hi := dominant.Values[len(dominant.Values)-1]
	vendors := make(map[string]int)
	for _, p := range all {
		if p.price >= lo && p.price <= hi {
			vendors[p.vendor]++
		}
	}
	sort.Float64s(prices)
	return &PriceSurvey{
		Prices:   prices,
		Clusters: clusters,
		Dominant: dominant,
		Vendors:  vendors,
		Listings: len(listings),
	}, nil
}
