package market

import (
	"fmt"
	"sort"
	"strings"
)

// AttackerStat is one annual-report statistic: the percentage of owners
// (or operators) of an application in a region estimated to be potential
// attackers for an attack category. It replaces the text-mined Upstream
// report figures of the paper.
type AttackerStat struct {
	// Category is the attack topic key ("dpf-tampering",
	// "ecm-reprogramming", ...).
	Category string
	// Application is the vehicle application the statistic covers.
	Application string
	// Region is the market region code.
	Region string
	// Year is the report year.
	Year int
	// PEA is the potential-attacker share in [0, 1].
	PEA float64
	// Source names the report the figure comes from.
	Source string
}

// VectorOccurrence is one annual-report statistic on how frequently an
// attack category was executed through each access class — the data
// behind the paper's claim that ECM reprogramming "has a high occurrence
// rate preferably based on physical attacks".
type VectorOccurrence struct {
	Category string
	Year     int
	// Shares maps the access class ("physical", "local", "adjacent",
	// "network") to its observed share of incidents; shares sum to ≈1.
	Shares map[string]float64
}

// ReportDB is the cybersecurity annual-report database.
type ReportDB struct {
	stats       []AttackerStat
	occurrences []VectorOccurrence
}

// NewReportDB builds a database, validating every entry.
func NewReportDB(stats []AttackerStat, occurrences []VectorOccurrence) (*ReportDB, error) {
	db := &ReportDB{}
	for _, s := range stats {
		if err := db.AddStat(s); err != nil {
			return nil, err
		}
	}
	for _, o := range occurrences {
		if err := db.AddOccurrence(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// AddStat inserts one attacker statistic.
func (db *ReportDB) AddStat(s AttackerStat) error {
	if strings.TrimSpace(s.Category) == "" || strings.TrimSpace(s.Application) == "" ||
		strings.TrimSpace(s.Region) == "" {
		return fmt.Errorf("market: attacker stat with empty category/application/region: %+v", s)
	}
	if s.PEA < 0 || s.PEA > 1 {
		return fmt.Errorf("market: attacker stat with PEA outside [0,1]: %+v", s)
	}
	db.stats = append(db.stats, s)
	return nil
}

// AddOccurrence inserts one vector-occurrence statistic.
func (db *ReportDB) AddOccurrence(o VectorOccurrence) error {
	if strings.TrimSpace(o.Category) == "" || len(o.Shares) == 0 {
		return fmt.Errorf("market: vector occurrence with empty category or shares: %+v", o)
	}
	var total float64
	for k, v := range o.Shares {
		if v < 0 {
			return fmt.Errorf("market: vector occurrence with negative share %s=%f", k, v)
		}
		total += v
	}
	if total < 0.99 || total > 1.01 {
		return fmt.Errorf("market: vector occurrence shares sum to %.3f, want ≈1", total)
	}
	db.occurrences = append(db.occurrences, o)
	return nil
}

// PEA returns the potential-attacker share for a category, application,
// region and year. When the exact year is absent it falls back to the
// most recent earlier year for the same key.
func (db *ReportDB) PEA(category, application, region string, year int) (float64, error) {
	category, application, region = normKey(category), normKey(application), normKey(region)
	bestYear := -1
	var best float64
	for _, s := range db.stats {
		if normKey(s.Category) != category || normKey(s.Application) != application ||
			normKey(s.Region) != region || s.Year > year {
			continue
		}
		if s.Year > bestYear {
			bestYear, best = s.Year, s.PEA
		}
	}
	if bestYear < 0 {
		return 0, fmt.Errorf("market: no PEA data for %s/%s/%s up to %d", category, application, region, year)
	}
	return best, nil
}

// OccurrenceShares returns the per-access-class incident shares for a
// category and year, with the same most-recent-earlier-year fallback.
func (db *ReportDB) OccurrenceShares(category string, year int) (map[string]float64, error) {
	category = normKey(category)
	bestYear := -1
	var best map[string]float64
	for _, o := range db.occurrences {
		if normKey(o.Category) != category || o.Year > year {
			continue
		}
		if o.Year > bestYear {
			bestYear, best = o.Year, o.Shares
		}
	}
	if bestYear < 0 {
		return nil, fmt.Errorf("market: no occurrence data for %s up to %d", category, year)
	}
	cp := make(map[string]float64, len(best))
	for k, v := range best {
		cp[k] = v
	}
	return cp, nil
}

// Categories lists the distinct stat categories, sorted.
func (db *ReportDB) Categories() []string {
	set := map[string]bool{}
	for _, s := range db.stats {
		set[normKey(s.Category)] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
