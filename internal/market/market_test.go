package market

import (
	"math"
	"testing"
)

func mustDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := DefaultDataset()
	if err != nil {
		t.Fatalf("DefaultDataset(): %v", err)
	}
	return ds
}

func TestSalesQueries(t *testing.T) {
	ds := mustDataset(t)
	ms, err := ds.Sales.MarketShare(MajorExcavatorMaker, "excavator", "EU", 2022)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 28120 {
		t.Errorf("MarketShare = %d, want 28120 (calibrated to Eq. 6)", ms)
	}
	vs, err := ds.Sales.VehicleSales("excavator", "EU", 2022)
	if err != nil {
		t.Fatal(err)
	}
	if vs != 84300 {
		t.Errorf("VehicleSales = %d, want 84300 (aggregate record preferred)", vs)
	}
	// Case-insensitive keys.
	if _, err := ds.Sales.MarketShare("terramach", "Excavator", "eu", 2022); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	// Missing data errors.
	if _, err := ds.Sales.VehicleSales("submarine", "EU", 2022); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := ds.Sales.MarketShare("Nobody", "excavator", "EU", 2022); err == nil {
		t.Error("unknown maker accepted")
	}
	makers := ds.Sales.Makers("excavator", "EU", 2022)
	if len(makers) != 3 {
		t.Errorf("Makers = %v, want 3 entries", makers)
	}
}

func TestSalesSumWithoutAggregate(t *testing.T) {
	db, err := NewSalesDB([]SalesRecord{
		{Maker: "A", Application: "van", Region: "EU", Year: 2022, Units: 100},
		{Maker: "B", Application: "van", Region: "EU", Year: 2022, Units: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := db.VehicleSales("van", "EU", 2022)
	if err != nil {
		t.Fatal(err)
	}
	if vs != 150 {
		t.Errorf("VehicleSales without aggregate = %d, want 150", vs)
	}
}

func TestSalesValidation(t *testing.T) {
	bad := []SalesRecord{
		{Maker: "", Application: "x", Region: "EU", Year: 2022, Units: 1},
		{Maker: "A", Application: "x", Region: "EU", Year: 1900, Units: 1},
		{Maker: "A", Application: "x", Region: "EU", Year: 2022, Units: -1},
	}
	for i, r := range bad {
		if _, err := NewSalesDB([]SalesRecord{r}); err == nil {
			t.Errorf("case %d: invalid record accepted: %+v", i, r)
		}
	}
}

func TestPEAQueryAndFallback(t *testing.T) {
	ds := mustDataset(t)
	pea, err := ds.Reports.PEA(CategoryDPFTampering, "excavator", "EU", 2022)
	if err != nil {
		t.Fatal(err)
	}
	if pea != 0.05 {
		t.Errorf("PEA = %v, want 0.05", pea)
	}
	// Year fallback: a 2023 query uses the 2022 figure.
	pea23, err := ds.Reports.PEA(CategoryDPFTampering, "excavator", "EU", 2023)
	if err != nil {
		t.Fatal(err)
	}
	if pea23 != 0.05 {
		t.Errorf("PEA fallback = %v, want 0.05", pea23)
	}
	// Earlier than any report: error.
	if _, err := ds.Reports.PEA(CategoryDPFTampering, "excavator", "EU", 2019); err == nil {
		t.Error("PEA before first report accepted")
	}
	if _, err := ds.Reports.PEA("nonexistent", "excavator", "EU", 2022); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestOccurrenceShares(t *testing.T) {
	ds := mustDataset(t)
	sh21, err := ds.Reports.OccurrenceShares("ecm-reprogramming", 2021)
	if err != nil {
		t.Fatal(err)
	}
	sh22, err := ds.Reports.OccurrenceShares("ecm-reprogramming", 2022)
	if err != nil {
		t.Fatal(err)
	}
	// The trend inversion the paper reports: physical majority in 2021,
	// local majority in 2022.
	if sh21["physical"] <= sh21["local"] {
		t.Errorf("2021 shares: physical %.2f ≤ local %.2f", sh21["physical"], sh21["local"])
	}
	if sh22["local"] <= sh22["physical"] {
		t.Errorf("2022 shares: local %.2f ≤ physical %.2f", sh22["local"], sh22["physical"])
	}
	// Mutating the returned map must not corrupt the DB.
	sh22["physical"] = 99
	again, err := ds.Reports.OccurrenceShares("ecm-reprogramming", 2022)
	if err != nil {
		t.Fatal(err)
	}
	if again["physical"] == 99 {
		t.Error("OccurrenceShares exposed internal state")
	}
}

func TestReportValidation(t *testing.T) {
	if _, err := NewReportDB([]AttackerStat{{Category: "", Application: "x", Region: "EU", PEA: 0.1}}, nil); err == nil {
		t.Error("empty category accepted")
	}
	if _, err := NewReportDB([]AttackerStat{{Category: "c", Application: "x", Region: "EU", PEA: 1.5}}, nil); err == nil {
		t.Error("PEA > 1 accepted")
	}
	if _, err := NewReportDB(nil, []VectorOccurrence{{Category: "c", Year: 2022,
		Shares: map[string]float64{"physical": 0.2}}}); err == nil {
		t.Error("non-normalized shares accepted")
	}
}

func TestMinePricesExcavatorCaseStudy(t *testing.T) {
	ds := mustDataset(t)
	// The paper clusters "adversary devices or services found online":
	// both kinds participate in the PPIA survey.
	sellable := ds.Listings.SelectKinds(CategoryDPFTampering, "EU", "device", "service")
	survey, err := MinePrices(sellable, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The dominant cluster must be the mainstream band with mean 360 EUR
	// (the paper's PPIA) and exactly 3 competing vendors (the paper's n).
	if math.Abs(survey.Dominant.Center-360) > 0.5 {
		t.Errorf("dominant price center = %.2f, want 360 (PPIA)", survey.Dominant.Center)
	}
	if got := survey.CompetitorCount(); got != 3 {
		t.Errorf("CompetitorCount = %d, want 3 (n of Eq. 7); vendors %v", got, survey.Vendors)
	}
	if survey.Listings != len(sellable) {
		t.Errorf("Listings = %d, want %d", survey.Listings, len(sellable))
	}
	if len(survey.Clusters) != 3 {
		t.Errorf("clusters = %d, want 3", len(survey.Clusters))
	}
}

func TestMinePricesComponentsVCU(t *testing.T) {
	ds := mustDataset(t)
	comps := ds.Listings.Select(CategoryDPFTampering, "EU", "component")
	survey, err := MinePrices(comps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(survey.Dominant.Center-50) > 0.5 {
		t.Errorf("component price center = %.2f, want 50 (VCU)", survey.Dominant.Center)
	}
}

func TestMinePricesErrors(t *testing.T) {
	if _, err := MinePrices(nil, 3); err == nil {
		t.Error("empty selection accepted")
	}
	ds := mustDataset(t)
	if _, err := MinePrices(ds.Listings.Select("", "", ""), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestListingValidation(t *testing.T) {
	bad := []*Listing{
		{ID: "", Category: "c", Vendor: "v", Kind: "device", Text: "100€"},
		{ID: "x", Category: "c", Vendor: "v", Kind: "warp-drive", Text: "100€"},
		{ID: "x", Category: "c", Vendor: "v", Kind: "device", Text: "no price here"},
	}
	for i, l := range bad {
		if _, err := NewListingsDB([]*Listing{l}); err == nil {
			t.Errorf("case %d: invalid listing accepted: %+v", i, l)
		}
	}
}

func TestListingsSelectFilters(t *testing.T) {
	ds := mustDataset(t)
	all := ds.Listings.Select("", "", "")
	if len(all) != ds.Listings.Len() {
		t.Errorf("empty filters should select everything: %d vs %d", len(all), ds.Listings.Len())
	}
	services := ds.Listings.Select(CategoryDPFTampering, "", "service")
	if len(services) != 3 {
		t.Errorf("services = %d, want 3", len(services))
	}
}
