package market

import (
	"fmt"
	"sort"
	"strings"
)

// SalesRecord is one (maker, application, region, year) sales figure.
type SalesRecord struct {
	// Maker is the manufacturer; "*" aggregates the whole market.
	Maker string
	// Application is the vehicle application ("excavator", "car", ...).
	Application string
	// Region is the market region code ("EU", "NA", ...).
	Region string
	// Year is the sales year.
	Year int
	// Units is the number of vehicles sold.
	Units int
}

// SalesDB stores sales figures and answers the VS / MS queries of
// Equation 2.
type SalesDB struct {
	records []SalesRecord
}

// NewSalesDB builds a database from records, validating each.
func NewSalesDB(records []SalesRecord) (*SalesDB, error) {
	db := &SalesDB{}
	for _, r := range records {
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Add inserts one record.
func (db *SalesDB) Add(r SalesRecord) error {
	if strings.TrimSpace(r.Maker) == "" || strings.TrimSpace(r.Application) == "" ||
		strings.TrimSpace(r.Region) == "" {
		return fmt.Errorf("market: sales record with empty maker/application/region: %+v", r)
	}
	if r.Year < 1990 || r.Year > 2100 {
		return fmt.Errorf("market: sales record with implausible year %d", r.Year)
	}
	if r.Units < 0 {
		return fmt.Errorf("market: sales record with negative units: %+v", r)
	}
	db.records = append(db.records, r)
	return nil
}

// Len returns the number of records.
func (db *SalesDB) Len() int { return len(db.records) }

// VehicleSales returns total market sales (VS) for an application,
// region and year, summing across makers (records with maker "*" count
// as whole-market aggregates and are preferred when present).
func (db *SalesDB) VehicleSales(application, region string, year int) (int, error) {
	application, region = normKey(application), normKey(region)
	aggregate, sum, found := -1, 0, false
	for _, r := range db.records {
		if normKey(r.Application) != application || normKey(r.Region) != region || r.Year != year {
			continue
		}
		found = true
		if r.Maker == "*" {
			aggregate = r.Units
			continue
		}
		sum += r.Units
	}
	if !found {
		return 0, fmt.Errorf("market: no sales data for %s/%s/%d", application, region, year)
	}
	if aggregate >= 0 {
		return aggregate, nil
	}
	return sum, nil
}

// MarketShare returns the units sold (MS) by one maker for an
// application, region and year.
func (db *SalesDB) MarketShare(maker, application, region string, year int) (int, error) {
	application, region = normKey(application), normKey(region)
	for _, r := range db.records {
		if normKey(r.Maker) == normKey(maker) &&
			normKey(r.Application) == application &&
			normKey(r.Region) == region && r.Year == year {
			return r.Units, nil
		}
	}
	return 0, fmt.Errorf("market: no market-share data for %s %s/%s/%d", maker, application, region, year)
}

// Makers lists the makers with records for an application/region/year,
// sorted, excluding the "*" aggregate.
func (db *SalesDB) Makers(application, region string, year int) []string {
	application, region = normKey(application), normKey(region)
	set := map[string]bool{}
	for _, r := range db.records {
		if r.Maker != "*" && normKey(r.Application) == application &&
			normKey(r.Region) == region && r.Year == year {
			set[r.Maker] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func normKey(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
