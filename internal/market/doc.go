// Package market provides the structured data substrates the PSP
// financial model consumes in place of the paper's external sources:
//
//   - a vehicle sales / market-share database (the VS and MS terms of
//     Equation 2),
//   - a cybersecurity annual-report database exposing potential-attacker
//     percentages (the PEA term), replacing the Upstream global
//     automotive cybersecurity reports, and
//   - a marketplace-listings corpus for adversary devices and services,
//     which the NLP layer mines for purchase prices (PPIA), component
//     costs (VCU) and competitor counts (n).
//
// The built-in dataset is calibrated to the paper's excavator case
// study: PAE = 1,406 potential attackers, PPIA ≈ 360 EUR,
// PPIA − VCU = 310 EUR and n = 3 competitors, reproducing Equations 6
// and 7.
package market
