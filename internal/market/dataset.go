package market

import "fmt"

// Dataset bundles the three market substrates.
type Dataset struct {
	Sales    *SalesDB
	Reports  *ReportDB
	Listings *ListingsDB
}

// CategoryDPFTampering is the attack category key of the excavator case
// study.
const CategoryDPFTampering = "dpf-tampering"

// MajorExcavatorMaker is the "major company" of the paper's Equation 6.
const MajorExcavatorMaker = "TerraMach"

// DefaultDataset returns the built-in dataset calibrated to the paper's
// excavator case study:
//
//   - TerraMach sold 28,120 excavators in Europe in 2022 (market share,
//     non-monopolistic market);
//   - the annual report estimates PEA = 5% for DPF tampering on European
//     excavators, so PAE = 28,120 × 0.05 = 1,406 (Equation 6);
//   - the dominant defeat-device price cluster averages 360 EUR (PPIA)
//     across three competing vendors (n = 3);
//   - raw component listings average 50 EUR (VCU), so
//     PPIA − VCU = 310 EUR (Equation 7).
func DefaultDataset() (*Dataset, error) {
	sales, err := NewSalesDB([]SalesRecord{
		{Maker: MajorExcavatorMaker, Application: "excavator", Region: "EU", Year: 2022, Units: 28120},
		{Maker: "DigWell", Application: "excavator", Region: "EU", Year: 2022, Units: 21400},
		{Maker: "GroundForce", Application: "excavator", Region: "EU", Year: 2022, Units: 16800},
		{Maker: "*", Application: "excavator", Region: "EU", Year: 2022, Units: 84300},
		{Maker: MajorExcavatorMaker, Application: "excavator", Region: "EU", Year: 2021, Units: 26350},
		{Maker: "*", Application: "excavator", Region: "EU", Year: 2021, Units: 79100},
		{Maker: "*", Application: "excavator", Region: "NA", Year: 2022, Units: 61200},
		{Maker: "*", Application: "car", Region: "EU", Year: 2022, Units: 11300000},
		{Maker: "*", Application: "truck", Region: "EU", Year: 2022, Units: 331000},
	})
	if err != nil {
		return nil, fmt.Errorf("market: build sales db: %w", err)
	}

	reports, err := NewReportDB(
		[]AttackerStat{
			{Category: CategoryDPFTampering, Application: "excavator", Region: "EU",
				Year: 2022, PEA: 0.05, Source: "Global Automotive Cybersecurity Report 2023"},
			{Category: CategoryDPFTampering, Application: "truck", Region: "EU",
				Year: 2022, PEA: 0.03, Source: "Global Automotive Cybersecurity Report 2023"},
			{Category: "ecm-reprogramming", Application: "car", Region: "EU",
				Year: 2022, PEA: 0.02, Source: "Global Automotive Cybersecurity Report 2023"},
			{Category: "adblue-tampering", Application: "truck", Region: "EU",
				Year: 2022, PEA: 0.04, Source: "Global Automotive Cybersecurity Report 2023"},
		},
		[]VectorOccurrence{
			{Category: "ecm-reprogramming", Year: 2021,
				Shares: map[string]float64{"physical": 0.62, "local": 0.25, "adjacent": 0.08, "network": 0.05}},
			{Category: "ecm-reprogramming", Year: 2022,
				Shares: map[string]float64{"physical": 0.28, "local": 0.55, "adjacent": 0.10, "network": 0.07}},
			{Category: CategoryDPFTampering, Year: 2022,
				Shares: map[string]float64{"physical": 0.55, "local": 0.35, "adjacent": 0.05, "network": 0.05}},
		},
	)
	if err != nil {
		return nil, fmt.Errorf("market: build report db: %w", err)
	}

	listings, err := NewListingsDB(defaultListings())
	if err != nil {
		return nil, fmt.Errorf("market: build listings db: %w", err)
	}

	return &Dataset{Sales: sales, Reports: reports, Listings: listings}, nil
}

// defaultListings returns the marketplace corpus. The mainstream
// defeat-device band is symmetric around 360 EUR across three vendors;
// a budget band sits near 150 EUR and a professional-install band near
// 800 EUR. Component listings (raw boards and pipes) average 50 EUR.
func defaultListings() []*Listing {
	mk := func(id, vendor, kind, text string) *Listing {
		return &Listing{
			ID: id, Category: CategoryDPFTampering, Vendor: vendor,
			Region: "EU", Kind: kind, Text: text,
		}
	}
	return []*Listing{
		// Mainstream band — vendor EmuTech (mean 360).
		mk("L001", "EmuTech", "device", "Full DPF delete kit for excavators, plug and play — 350€ shipped"),
		mk("L002", "EmuTech", "device", "DPF off module v2, fits most diesel machines, 355 EUR"),
		mk("L003", "EmuTech", "device", "Delete kit with harness, warranty included — 360€"),
		mk("L004", "EmuTech", "device", "Pro emulator, updated firmware, 365 EUR direct"),
		mk("L005", "EmuTech", "device", "Complete kit + instructions, 370€ this week only"),
		// Mainstream band — vendor DieselFreedom (mean 360).
		mk("L006", "DieselFreedom", "device", "DPF removal emulator, all brands, 345€"),
		mk("L007", "DieselFreedom", "device", "Emission-off box, tested on excavators — 360 EUR"),
		mk("L008", "DieselFreedom", "device", "Delete module, next-day dispatch, 375€"),
		// Mainstream band — vendor TuneWorks (mean 360).
		mk("L009", "TuneWorks", "device", "DPF defeat device, CE-less special — 352€"),
		mk("L010", "TuneWorks", "device", "Excavator delete kit, support included, 368 EUR"),
		// Budget band — generic imports.
		mk("L011", "BayMods", "device", "Cheap DPF emulator clone, no support, 140€"),
		mk("L012", "BayMods", "device", "Basic delete dongle, 150 EUR, untested on excavators"),
		mk("L013", "GreyImports", "device", "Bulk emulator boards, 145€ each"),
		mk("L014", "GreyImports", "device", "Entry-level DPF off stick — 155 EUR"),
		// Professional services band.
		mk("L015", "ProFlash Garage", "service", "On-site DPF delete service incl. remap, 790€ all-in"),
		mk("L016", "ProFlash Garage", "service", "Full delete + dyno verification, 800 EUR"),
		mk("L017", "ProFlash Garage", "service", "Fleet discount delete service, 810€ per machine"),
		// Component listings — the VCU basis.
		mk("L018", "PCBdirect", "component", "Bare emulator PCB, unflashed — 48€"),
		mk("L019", "PCBdirect", "component", "Blank controller board for DIY emulator, 50 EUR"),
		mk("L020", "SteelPipe Co", "component", "Straight replacement pipe, raw steel, 52€"),
	}
}
