package core

import (
	"context"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/social"
)

// poisonedFramework builds a framework over the reference corpus plus an
// injected poisoning campaign pushing the GPS-tracker-defeat tag.
func poisonedFramework(t *testing.T) *Framework {
	t.Helper()
	store, err := social.DefaultStore(1234)
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := social.InjectPoison(social.PoisonCampaign{
		Seed:        99,
		Tag:         "gpsblocker",
		Application: "excavator",
		Region:      social.RegionEurope,
		Posts:       1500,
		Authors:     4,
		Start:       time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2022, 9, 1, 0, 0, 0, 0, time.UTC),
		Views:       90000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Add(campaign...); err != nil {
		t.Fatal(err)
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store, Market: ds})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestPoisoningFlipsUnfilteredRanking(t *testing.T) {
	fw := poisonedFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Application:     "excavator",
		Region:          social.RegionEurope,
		DisableLearning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := res.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	// Without the defence, the bought-reach campaign hijacks the index.
	if top.Topic != "GPS tracker defeat" {
		t.Fatalf("expected the poisoned topic on top, got %s (p=%.3f)", top.Topic, top.Probability)
	}
	if res.InauthenticFiltered != 0 {
		t.Errorf("filter disabled but %d posts dropped", res.InauthenticFiltered)
	}
}

func TestPoisoningDefenceRestoresRanking(t *testing.T) {
	fw := poisonedFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Application:       "excavator",
		Region:            social.RegionEurope,
		DisableLearning:   true,
		FilterInauthentic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := res.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Topic != "DPF delete" {
		t.Errorf("filtered top = %s, want DPF delete restored", top.Topic)
	}
	if res.InauthenticFiltered < 1000 {
		t.Errorf("filtered only %d posts, want most of the 1500-post campaign", res.InauthenticFiltered)
	}
}

func TestFilterIsNoOpOnCleanCorpus(t *testing.T) {
	fw := newTestFramework(t)
	clean, err := fw.RunSocial(context.Background(), SocialInput{
		Application:     "excavator",
		Region:          social.RegionEurope,
		DisableLearning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := fw.RunSocial(context.Background(), SocialInput{
		Application:       "excavator",
		Region:            social.RegionEurope,
		DisableLearning:   true,
		FilterInauthentic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanTop, err := clean.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	filteredTop, err := filtered.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	if cleanTop.Topic != filteredTop.Topic {
		t.Errorf("filter changed the clean-corpus verdict: %s vs %s", cleanTop.Topic, filteredTop.Topic)
	}
	// Organic posts are diverse; the defence should drop few of them.
	organicMatched := 0
	for _, e := range clean.Index.Entries {
		organicMatched += e.Posts
	}
	if organicMatched == 0 {
		t.Fatal("no organic posts matched")
	}
	dropRate := float64(filtered.InauthenticFiltered) / float64(organicMatched)
	if dropRate > 0.15 {
		t.Errorf("defence dropped %.1f%% of organic posts", dropRate*100)
	}
}

func TestInjectPoisonValidation(t *testing.T) {
	base := social.PoisonCampaign{
		Seed: 1, Tag: "x", Application: "car", Posts: 10, Authors: 2, Views: 1000,
		Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC),
	}
	if _, err := social.InjectPoison(base); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	bad := base
	bad.Tag = ""
	if _, err := social.InjectPoison(bad); err == nil {
		t.Error("empty tag accepted")
	}
	bad = base
	bad.Posts = 0
	if _, err := social.InjectPoison(bad); err == nil {
		t.Error("zero posts accepted")
	}
	bad = base
	bad.End = bad.Start
	if _, err := social.InjectPoison(bad); err == nil {
		t.Error("empty window accepted")
	}
}
