package core

import (
	"context"
	"errors"
	"testing"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// faultySearcher fails after a configurable number of successful calls,
// injecting the transport failures a remote platform produces.
type faultySearcher struct {
	inner     social.Searcher
	successes int
	calls     int
	err       error
}

func (f *faultySearcher) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	f.calls++
	if f.calls > f.successes {
		return nil, f.err
	}
	return f.inner.Search(ctx, q)
}

func TestRunSocialPropagatesSearcherErrors(t *testing.T) {
	store, err := social.DefaultStore(1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("platform unavailable")
	for _, successes := range []int{0, 3, 12} {
		fw, err := New(Config{Searcher: &faultySearcher{inner: store, successes: successes, err: boom}})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fw.RunSocial(context.Background(), SocialInput{
			Threats: []*tara.ThreatScenario{ecmThreat()},
		})
		if !errors.Is(err, boom) {
			t.Errorf("successes=%d: error = %v, want wrapped platform failure", successes, err)
		}
	}
}

func TestRunSocialHonoursContextCancellation(t *testing.T) {
	store, err := social.DefaultStore(1)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.RunSocial(ctx, SocialInput{}); err == nil {
		t.Error("cancelled context accepted")
	}
}

// emptySearcher returns no posts for any query: the cold-start situation
// before any corpus exists.
type emptySearcher struct{}

func (emptySearcher) Search(context.Context, social.Query) (*social.Page, error) {
	return &social.Page{}, nil
}

func TestRunSocialEmptyPlatform(t *testing.T) {
	fw, err := New(Config{Searcher: emptySearcher{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Threats: []*tara.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		t.Fatalf("empty platform should degrade gracefully: %v", err)
	}
	// All entries present with zero scores; no probabilities.
	for _, e := range res.Index.Entries {
		if e.Score != 0 || e.Probability != 0 {
			t.Errorf("entry %s has non-zero score on empty platform", e.Topic)
		}
	}
	// The tuning must fall back to the standard table: zero posts give
	// no evidence to retune on, and the threat classifies outsider.
	if len(res.Tunings) != 1 {
		t.Fatalf("tunings = %d", len(res.Tunings))
	}
	tuning := res.Tunings[0]
	if tuning.Insider {
		t.Error("zero-post threat classified insider")
	}
	if !tuning.Table.Equal(tara.StandardVectorTable()) {
		t.Error("zero-post tuning deviates from the standard table")
	}
}

func TestRunFinancialMissingListings(t *testing.T) {
	fw := newTestFramework(t)
	// A category with report/sales data but no listings must fail the
	// PPIA survey cleanly.
	_, err := fw.RunFinancial(FinancialInput{
		Category:    "ecm-reprogramming",
		Application: "car",
		Region:      "EU",
		Year:        2022,
		MarketKind:  finance.Monopolistic,
	})
	if err == nil {
		t.Error("missing listings accepted")
	}
}
