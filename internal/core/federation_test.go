package core

import (
	"context"
	"testing"

	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/social"
)

// TestDeepWebFederationImprovesOutsiderCoverage verifies the paper's
// roadmap claim: adding a deep-web-style source improves outsider attack
// analysis (more posts behind the theft topics) without flipping the
// insider verdicts.
func TestDeepWebFederationImprovesOutsiderCoverage(t *testing.T) {
	surface, err := social.DefaultStore(21)
	if err != nil {
		t.Fatal(err)
	}
	deepPosts, err := social.Generate(social.DeepWebCorpusSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	deep := social.NewStore()
	if err := deep.Add(deepPosts...); err != nil {
		t.Fatal(err)
	}
	multi, err := social.NewMulti(
		social.PlatformSource{Name: "surface", Searcher: surface},
		social.PlatformSource{Name: "deepweb", Searcher: deep},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		t.Fatal(err)
	}

	run := func(searcher social.Searcher) map[string]int {
		fw, err := New(Config{Searcher: searcher, Market: ds})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fw.RunSocial(context.Background(), SocialInput{DisableLearning: true})
		if err != nil {
			t.Fatal(err)
		}
		posts := map[string]int{}
		for _, e := range res.Index.Entries {
			posts[e.Topic] = e.Posts
		}
		// The insider verdict must hold in both configurations.
		top, err := res.Index.Top()
		if err != nil {
			t.Fatal(err)
		}
		if top.Topic != "DPF delete" {
			t.Fatalf("top entry = %s, want DPF delete", top.Topic)
		}
		return posts
	}

	surfaceOnly := run(surface)
	federated := run(multi)

	for _, topic := range []string{"Immobilizer bypass", "GPS tracker defeat"} {
		if federated[topic] <= surfaceOnly[topic] {
			t.Errorf("%s coverage did not improve: %d → %d",
				topic, surfaceOnly[topic], federated[topic])
		}
	}
}
