package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// parallelTestThreats returns several keyword-bearing scenarios so the
// block 10–12 fan-out has real width.
func parallelTestThreats() []*tara.ThreatScenario {
	return []*tara.ThreatScenario{
		ecmThreat(),
		{
			ID: "TS-DPF-01", Name: "DPF removal",
			DamageIDs: []string{"DS-02"},
			Property:  tara.PropertyIntegrity,
			STRIDE:    tara.Tampering,
			Profiles:  []tara.AttackerProfile{tara.ProfileInsider},
			Vector:    tara.VectorPhysical,
			Keywords:  []string{"dpfdelete", "dpfoff", "dpfremoval"},
		},
		{
			ID: "TS-IMMO-01", Name: "Immobilizer bypass",
			DamageIDs: []string{"DS-03"},
			Property:  tara.PropertyIntegrity,
			STRIDE:    tara.Spoofing,
			Profiles:  []tara.AttackerProfile{tara.ProfileOutsider},
			Vector:    tara.VectorAdjacent,
			Keywords:  []string{"keyfobhack", "relayattack"},
		},
		nil,                                   // skipped
		{ID: "TS-EMPTY", Name: "no keywords"}, // skipped
	}
}

func frameworkWithConcurrency(t *testing.T, concurrency int) *Framework {
	t.Helper()
	store, err := social.DefaultStore(1234)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store, Market: ds, Concurrency: concurrency})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestRunSocialParallelMatchesSequential pins the parallel fan-out to
// the sequential output: the same input on the same seeded corpus must
// produce an identical SocialResult at every concurrency level.
func TestRunSocialParallelMatchesSequential(t *testing.T) {
	in := SocialInput{
		Threats:           parallelTestThreats(),
		FilterInauthentic: true,
	}
	baseline, err := frameworkWithConcurrency(t, 1).RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Tunings) != 3 {
		t.Fatalf("baseline tunings = %d, want 3", len(baseline.Tunings))
	}
	for _, concurrency := range []int{2, 8} {
		res, err := frameworkWithConcurrency(t, concurrency).RunSocial(context.Background(), in)
		if err != nil {
			t.Fatalf("concurrency %d: %v", concurrency, err)
		}
		if !reflect.DeepEqual(res.Index, baseline.Index) {
			t.Errorf("concurrency %d: SAI index diverged from sequential run", concurrency)
		}
		if !reflect.DeepEqual(res.Learned, baseline.Learned) {
			t.Errorf("concurrency %d: learned keywords diverged: %v vs %v",
				concurrency, res.Learned, baseline.Learned)
		}
		if res.InauthenticFiltered != baseline.InauthenticFiltered {
			t.Errorf("concurrency %d: filtered = %d, sequential %d",
				concurrency, res.InauthenticFiltered, baseline.InauthenticFiltered)
		}
		if len(res.Tunings) != len(baseline.Tunings) {
			t.Fatalf("concurrency %d: tunings = %d, sequential %d",
				concurrency, len(res.Tunings), len(baseline.Tunings))
		}
		for i, tuning := range res.Tunings {
			want := baseline.Tunings[i]
			if tuning.Threat.ID != want.Threat.ID {
				t.Errorf("concurrency %d: tuning %d is %s, sequential order says %s",
					concurrency, i, tuning.Threat.ID, want.Threat.ID)
			}
			if tuning.Posts != want.Posts || tuning.Insider != want.Insider {
				t.Errorf("concurrency %d: tuning %s posts/insider = %d/%v, want %d/%v",
					concurrency, tuning.Threat.ID, tuning.Posts, tuning.Insider, want.Posts, want.Insider)
			}
			if !reflect.DeepEqual(tuning.VectorShares, want.VectorShares) {
				t.Errorf("concurrency %d: tuning %s shares diverged", concurrency, tuning.Threat.ID)
			}
			if !reflect.DeepEqual(tuning.Table, want.Table) {
				t.Errorf("concurrency %d: tuning %s table diverged", concurrency, tuning.Threat.ID)
			}
		}
	}
}

// TestRunSocialShardCountEquivalence pins the full Fig. 7 workflow to
// the store's shard count: the lock-striped store must feed the
// pipeline the exact post stream the single-stripe store does, so the
// whole SocialResult — index, learned keywords, tunings — is identical
// at any stripe count.
func TestRunSocialShardCountEquivalence(t *testing.T) {
	posts, err := social.Generate(social.DefaultCorpusSpec(1234))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		t.Fatal(err)
	}
	in := SocialInput{Threats: parallelTestThreats(), FilterInauthentic: true}
	var baseline *SocialResult
	for _, shards := range []int{1, 8} {
		store := social.NewStoreShards(shards)
		if err := store.Add(posts...); err != nil {
			t.Fatal(err)
		}
		fw, err := New(Config{Searcher: store, Market: ds})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fw.RunSocial(context.Background(), in)
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if baseline == nil {
			baseline = res
			if len(res.Tunings) == 0 || len(res.Index.Entries) == 0 {
				t.Fatal("baseline result empty; equivalence test is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Errorf("shards %d: SocialResult diverged from single-shard run", shards)
		}
	}
}

// blockingSearcher parks every Search call on the context so a test can
// observe in-flight fan-out and then cancel it.
type blockingSearcher struct {
	started   chan struct{}
	startOnce sync.Once
	calls     atomic.Int32
}

func (b *blockingSearcher) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	b.calls.Add(1)
	b.startOnce.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestRunSocialCancellationAborts cancels the context while the group
// query fan-out is parked in the searcher and expects RunSocial to
// return promptly with the cancellation error.
func TestRunSocialCancellationAborts(t *testing.T) {
	searcher := &blockingSearcher{started: make(chan struct{})}
	fw, err := New(Config{Searcher: searcher, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fw.RunSocial(ctx, SocialInput{Threats: parallelTestThreats()})
		done <- err
	}()
	<-searcher.started
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("RunSocial returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSocial did not abort after cancellation")
	}
}

// countingSearcher wraps a Searcher and counts Search calls, so tests
// can assert a failed fan-out stopped dispatching.
type countingSearcher struct {
	inner social.Searcher
	calls atomic.Int32
	fail  atomic.Bool
}

func (c *countingSearcher) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	c.calls.Add(1)
	if c.fail.Load() {
		return nil, fmt.Errorf("injected platform failure")
	}
	return c.inner.Search(ctx, q)
}

// TestRunSocialQueryErrorPropagates verifies a platform error surfaces
// with its topic attribution at concurrency > 1.
func TestRunSocialQueryErrorPropagates(t *testing.T) {
	store, err := social.DefaultStore(1)
	if err != nil {
		t.Fatal(err)
	}
	searcher := &countingSearcher{inner: store}
	searcher.fail.Store(true)
	fw, err := New(Config{Searcher: searcher, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunSocial(context.Background(), SocialInput{}); err == nil {
		t.Fatal("failing platform did not surface an error")
	}
}

// TestForEachLimitedBoundsWorkers asserts the pool never runs more than
// the configured number of tasks at once and visits every index.
func TestForEachLimitedBoundsWorkers(t *testing.T) {
	const limit, n = 3, 20
	var active, peak, visits atomic.Int32
	err := forEachLimited(context.Background(), limit, n, func(ctx context.Context, i int) error {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		visits.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits.Load() != n {
		t.Errorf("visited %d indices, want %d", visits.Load(), n)
	}
	if peak.Load() > limit {
		t.Errorf("observed %d concurrent tasks, limit %d", peak.Load(), limit)
	}
}

// TestForEachLimitedFirstErrorWins asserts the first failure cancels
// the remaining dispatch and is the error returned.
func TestForEachLimitedFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := forEachLimited(context.Background(), 1, 50, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got > 4 {
		t.Errorf("pool kept dispatching after failure: %d tasks ran", got)
	}
}

// TestConfigConcurrencyValidation pins the knob's validation and
// defaulting behaviour.
func TestConfigConcurrencyValidation(t *testing.T) {
	if _, err := New(Config{Concurrency: -1}); err == nil {
		t.Error("negative concurrency accepted")
	}
	fw, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Concurrency() < 1 {
		t.Errorf("default concurrency = %d, want >= 1", fw.Concurrency())
	}
	fw, err = New(Config{Concurrency: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Concurrency() != 7 {
		t.Errorf("concurrency = %d, want 7", fw.Concurrency())
	}
}
