package core

import (
	"fmt"
	"runtime"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
)

// Config wires the PSP framework's dependencies and tunables. Zero-value
// tunables take documented defaults; Searcher and Market are required
// only by the workflows that use them.
type Config struct {
	// Searcher is the social platform (in-process store or HTTP client).
	Searcher social.Searcher
	// Market is the sales/reports/listings dataset.
	Market *market.Dataset
	// Keywords is the attack keyword database; nil uses
	// DefaultKeywordDB.
	Keywords *KeywordDB
	// Weights is the SAI attraction mix; the zero value means
	// sai.DefaultWeights.
	Weights sai.Weights
	// Bands maps vector shares onto feasibility ratings; the zero value
	// means sai.DefaultRatingBands.
	Bands sai.RatingBands
	// FinanceBands maps demand ratios onto feasibility ratings; the zero
	// value means finance.DefaultThresholds.
	FinanceBands finance.Thresholds
	// LearnMax caps keywords learned per run (default 10, negative
	// disables learning).
	LearnMax int
	// PriceClusters is the k of the PPIA price clustering (default 3).
	PriceClusters int
	// Concurrency bounds the social workflow's parallel fan-out: the
	// keyword-group queries, auto-learning re-queries and per-threat
	// tunings run on a worker pool of this size. 0 means
	// runtime.GOMAXPROCS(0); 1 restores strictly sequential queries.
	// Result ordering is deterministic at any setting.
	Concurrency int
}

// Framework is the PSP framework instance.
type Framework struct {
	searcher     social.Searcher
	market       *market.Dataset
	keywords     *KeywordDB
	builder      *sai.Builder
	scorer       *sai.Scorer
	bands        sai.RatingBands
	financeBands finance.Thresholds
	learnMax     int
	priceK       int
	concurrency  int
}

// New validates the configuration and builds a Framework.
func New(cfg Config) (*Framework, error) {
	keywords := cfg.Keywords
	if keywords == nil {
		var err error
		keywords, err = DefaultKeywordDB()
		if err != nil {
			return nil, err
		}
	}
	weights := cfg.Weights
	if weights == (sai.Weights{}) {
		weights = sai.DefaultWeights()
	}
	scorer, err := sai.NewScorer(weights, nil)
	if err != nil {
		return nil, err
	}
	builder, err := sai.NewBuilder(scorer, nil, nil)
	if err != nil {
		return nil, err
	}
	bands := cfg.Bands
	if bands == (sai.RatingBands{}) {
		bands = sai.DefaultRatingBands()
	}
	if err := bands.Validate(); err != nil {
		return nil, err
	}
	finBands := cfg.FinanceBands
	if finBands == (finance.Thresholds{}) {
		finBands = finance.DefaultThresholds()
	}
	if err := finBands.Validate(); err != nil {
		return nil, err
	}
	learnMax := cfg.LearnMax
	if learnMax == 0 {
		learnMax = 10
	}
	priceK := cfg.PriceClusters
	if priceK == 0 {
		priceK = 3
	}
	if priceK < 1 {
		return nil, fmt.Errorf("core: invalid price cluster count %d", priceK)
	}
	if cfg.Concurrency < 0 {
		return nil, fmt.Errorf("core: invalid concurrency %d", cfg.Concurrency)
	}
	concurrency := cfg.Concurrency
	if concurrency == 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	return &Framework{
		searcher:     cfg.Searcher,
		market:       cfg.Market,
		keywords:     keywords,
		builder:      builder,
		scorer:       scorer,
		bands:        bands,
		financeBands: finBands,
		learnMax:     learnMax,
		priceK:       priceK,
		concurrency:  concurrency,
	}, nil
}

// Keywords returns the framework's keyword database (the live instance:
// social runs extend a clone, and PersistLearned merges results back).
func (f *Framework) Keywords() *KeywordDB { return f.keywords }

// Bands returns the share → rating bands in use.
func (f *Framework) Bands() sai.RatingBands { return f.bands }

// Concurrency returns the resolved worker-pool size of the social
// workflow's query fan-out.
func (f *Framework) Concurrency() int { return f.concurrency }
