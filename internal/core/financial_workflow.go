package core

import (
	"fmt"
	"math"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/tara"
)

// FinancialInput parameterizes one run of the Fig. 10 workflow.
type FinancialInput struct {
	// Category is the attack topic key in the market dataset
	// ("dpf-tampering").
	Category string
	// Application and Region scope the sales and listings queries
	// ("excavator", "EU").
	Application string
	Region      string
	// Year selects the sales year ("past year's vehicle sales trend
	// reports").
	Year int
	// MarketKind selects the Equation 2 branch. Monopolistic markets use
	// total vehicle sales; non-monopolistic ones use the maker's share.
	MarketKind finance.MarketKind
	// Maker is required for non-monopolistic markets.
	Maker string
	// Competitors overrides the competitor count n; 0 derives it from
	// the listings survey.
	Competitors int
	// AdversaryProfile optionally provides the Equation 4 terms for an
	// independent fixed-cost estimate; nil uses DefaultAdversaryProfile.
	AdversaryProfile *AdversaryProfile
}

// AdversaryProfile carries the Equation 4 inputs: R&D effort, hourly
// rate and equipment depreciation.
type AdversaryProfile struct {
	// FTEHours is the full-time-equivalent R&D effort in hours.
	FTEHours float64
	// HourlyCost is the black-hat hourly rate.
	HourlyCost finance.Money
	// Depreciation is the straight-line CAPEX depreciation (SLD).
	Depreciation finance.Money
}

// DefaultAdversaryProfile returns the default Equation 4 profile: one
// work-year (2,080 h) at 60 EUR/h plus 20,480 EUR of depreciated lab
// instrumentation — a deliberate match for the ≈145k EUR investment of
// the paper's worked example.
func DefaultAdversaryProfile() *AdversaryProfile {
	return &AdversaryProfile{
		FTEHours:     2080,
		HourlyCost:   finance.FromUnits(60, finance.EUR),
		Depreciation: finance.FromUnits(20480, finance.EUR),
	}
}

// FinancialResult is the output of the Fig. 10 workflow.
type FinancialResult struct {
	// UnitsBasis is the VS or MS figure used (Equation 2 input).
	UnitsBasis int
	// PEA is the potential-attacker share from the annual reports.
	PEA float64
	// PAE is the potential attacker estimation (Equation 2).
	PAE int
	// PPIA is the mined purchase price per insider attack.
	PPIA finance.Money
	// VCU is the mined variable cost per unit.
	VCU finance.Money
	// N is the competitor count used in Equations 3/5.
	N int
	// MV is the market value (Equation 1 / Equation 6).
	MV finance.Money
	// SecurityBudget is FC from Equation 5 with BEP = PAE: the
	// investment the product must withstand (Equation 7).
	SecurityBudget finance.Money
	// AdversaryFC is the independent Equation 4 estimate of the
	// adversary's fixed cost.
	AdversaryFC finance.Money
	// BEP is the break-even volume for AdversaryFC (Equation 3).
	BEP int
	// Rating is the financial attack feasibility rating (PAE vs BEP).
	Rating tara.FeasibilityRating
	// Survey is the underlying price survey (clusters, vendors).
	Survey *market.PriceSurvey
	// Curve is the Fig. 11 break-even diagram for AdversaryFC.
	Curve *finance.BEPCurve
}

// RunFinancial executes the financial workflow of Fig. 10.
func (f *Framework) RunFinancial(in FinancialInput) (*FinancialResult, error) {
	if f.market == nil {
		return nil, fmt.Errorf("core: financial workflow requires a configured Market dataset")
	}
	if in.Category == "" || in.Application == "" || in.Region == "" || in.Year == 0 {
		return nil, fmt.Errorf("core: financial input missing category/application/region/year: %+v", in)
	}

	// Block 1: potential attackers estimation.
	var units int
	var err error
	switch in.MarketKind {
	case finance.Monopolistic:
		units, err = f.market.Sales.VehicleSales(in.Application, in.Region, in.Year)
	case finance.NonMonopolistic:
		if in.Maker == "" {
			return nil, fmt.Errorf("core: non-monopolistic market requires a maker")
		}
		units, err = f.market.Sales.MarketShare(in.Maker, in.Application, in.Region, in.Year)
	default:
		return nil, fmt.Errorf("core: invalid market kind %d", int(in.MarketKind))
	}
	if err != nil {
		return nil, fmt.Errorf("core: sales lookup: %w", err)
	}
	pea, err := f.market.Reports.PEA(in.Category, in.Application, in.Region, in.Year)
	if err != nil {
		return nil, fmt.Errorf("core: PEA lookup: %w", err)
	}
	pae, err := finance.PAE(units, pea)
	if err != nil {
		return nil, err
	}

	// Block 2: PPIA from the device/service listings survey.
	sellable := f.market.Listings.SelectKinds(in.Category, in.Region, "device", "service")
	survey, err := market.MinePrices(sellable, f.priceK)
	if err != nil {
		return nil, fmt.Errorf("core: PPIA survey: %w", err)
	}
	ppia := finance.FromUnits(math.Round(survey.Dominant.Center), finance.EUR)

	// VCU from the component listings (single band).
	components := f.market.Listings.Select(in.Category, in.Region, "component")
	vcu := finance.Money{Currency: finance.EUR}
	if len(components) > 0 {
		compSurvey, err := market.MinePrices(components, 1)
		if err != nil {
			return nil, fmt.Errorf("core: VCU survey: %w", err)
		}
		vcu = finance.FromUnits(math.Round(compSurvey.Dominant.Center), finance.EUR)
	}

	// Competitor count n.
	n := in.Competitors
	if n == 0 {
		n = survey.CompetitorCount()
	}
	if n < 1 {
		return nil, fmt.Errorf("core: derived competitor count %d < 1", n)
	}

	// Block 6: market value.
	mv, err := finance.MarketValue(pae, ppia)
	if err != nil {
		return nil, err
	}

	// Block 7: security budget via Equation 5 with BEP = PAE.
	budget, err := finance.InverseFixedCost(pae, ppia, vcu, n)
	if err != nil {
		return nil, err
	}

	// Independent adversary estimate via Equation 4 and its break-even.
	profile := in.AdversaryProfile
	if profile == nil {
		profile = DefaultAdversaryProfile()
	}
	advFC, err := finance.FixedCost(profile.FTEHours, profile.HourlyCost, profile.Depreciation)
	if err != nil {
		return nil, err
	}
	bep, err := finance.BreakEven(advFC, n, ppia, vcu)
	if err != nil {
		return nil, err
	}
	rating, err := finance.Rate(finance.FeasibilityInput{PAE: pae, BEP: bep, MV: mv}, f.financeBands)
	if err != nil {
		return nil, err
	}

	// Fig. 11 curve: sample to twice the break-even volume.
	curve, err := finance.ComputeBEPCurve(advFC, n, ppia, vcu, 2*bep, 41)
	if err != nil {
		return nil, err
	}

	return &FinancialResult{
		UnitsBasis:     units,
		PEA:            pea,
		PAE:            pae,
		PPIA:           ppia,
		VCU:            vcu,
		N:              n,
		MV:             mv,
		SecurityBudget: budget,
		AdversaryFC:    advFC,
		BEP:            bep,
		Rating:         rating,
		Survey:         survey,
		Curve:          curve,
	}, nil
}
