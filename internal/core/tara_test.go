package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/psp-framework/psp/internal/tara"
)

func taraFramework(t *testing.T, concurrency int) *Framework {
	t.Helper()
	f, err := New(Config{Concurrency: concurrency})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// resultsJSON renders a result set in a stable byte form for the
// byte-identity comparison the equivalence property demands.
func resultsJSON(t *testing.T, results []*tara.ThreatResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&buf, "%s|%d|%d|%d|%d|%d|%d\n",
			r.Threat.ID, r.Impact, r.Feasibility, r.Risk, r.Treatment, r.CAL, r.DominantVector)
	}
	return buf.Bytes()
}

func conceptJSON(t *testing.T, results []*tara.ThreatResult) []byte {
	t.Helper()
	if len(results) == 0 {
		return nil
	}
	c, err := tara.DeriveConcept(results)
	if err != nil {
		t.Fatalf("DeriveConcept: %v", err)
	}
	var buf bytes.Buffer
	for _, g := range c.Goals {
		fmt.Fprintf(&buf, "G%s|%s|%d|%d\n", g.ID, g.Statement, g.CAL, g.Risk)
	}
	for _, cl := range c.Claims {
		fmt.Fprintf(&buf, "C%s|%s\n", cl.ID, cl.Rationale)
	}
	return buf.Bytes()
}

// randomMutation applies one pseudo-random mutation through the
// incremental API and returns a description for failure messages.
// Mutations that fail eager validation (e.g. removing a referenced
// entity) are fine: they must leave the model untouched.
func randomMutation(a *tara.Analysis, rng *rand.Rand, seq int) string {
	pick := func(n int) int { return rng.Intn(n) }
	switch pick(10) {
	case 0:
		as := tara.GenAsset(fmt.Sprintf("A-%03d", pick(25)), rng)
		a.UpsertAsset(as)
		return "upsert asset " + as.ID
	case 1:
		if len(a.Item.Assets) > 1 {
			id := a.Item.Assets[pick(len(a.Item.Assets))].ID
			a.RemoveAsset(id)
			return "remove asset " + id
		}
	case 2:
		d := tara.GenDamage(fmt.Sprintf("DS-%03d", pick(25)), a.Item.Assets, rng)
		a.UpsertDamage(d)
		return "upsert damage " + d.ID
	case 3:
		if len(a.Damages) > 0 {
			id := a.Damages[pick(len(a.Damages))].ID
			a.RemoveDamage(id)
			return "remove damage " + id
		}
	case 4:
		if len(a.Damages) > 0 {
			th := tara.GenThreat(fmt.Sprintf("TS-%03d", pick(25)), a.Damages, a.Item.Assets, rng)
			a.UpsertThreat(th)
			return "upsert threat " + th.ID
		}
	case 5:
		if len(a.Threats) > 1 {
			id := a.Threats[pick(len(a.Threats))].ID
			a.RemoveThreat(id)
			return "remove threat " + id
		}
	case 6:
		if len(a.Threats) > 0 {
			tid := a.Threats[pick(len(a.Threats))].ID
			p := tara.GenPath(fmt.Sprintf("AP-%03d", seq), tid, rng)
			a.UpsertPath(p)
			return "upsert path " + p.ID
		}
	case 7:
		if len(a.Paths) > 0 {
			id := a.Paths[pick(len(a.Paths))].ID
			a.RemovePath(id)
			return "remove path " + id
		}
	case 8:
		if len(a.Threats) > 0 {
			tid := a.Threats[pick(len(a.Threats))].ID
			ratings := map[tara.AttackVector]tara.FeasibilityRating{
				tara.VectorPhysical: tara.FeasibilityRating(1 + pick(4)),
				tara.VectorLocal:    tara.FeasibilityRating(1 + pick(4)),
				tara.VectorAdjacent: tara.FeasibilityRating(1 + pick(4)),
				tara.VectorNetwork:  tara.FeasibilityRating(1 + pick(4)),
			}
			tbl, err := tara.NewVectorTable(fmt.Sprintf("tuned-%d", seq), ratings)
			if err == nil {
				a.SetThreatTable(tid, tbl)
			}
			return "set threat table " + tid
		}
	case 9:
		bands := tara.StandardPotentialThresholds()
		bands.HighMax += pick(3)
		bands.MediumMax += pick(3)
		a.SetPotentialBands(bands)
		return "set potential bands"
	}
	return "noop"
}

// TestIncrementalEqualsColdProperty drives random mutation sequences
// through the incremental engine at pool sizes 1, 4 and 8 and checks
// after every step that the parallel incremental results — and the
// derived concept — are byte-identical to a cold Run of a fresh clone.
func TestIncrementalEqualsColdProperty(t *testing.T) {
	for _, pool := range []int{1, 4, 8} {
		pool := pool
		t.Run(fmt.Sprintf("pool=%d", pool), func(t *testing.T) {
			f := taraFramework(t, pool)
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				a, err := tara.GenerateAnalysis(tara.GenSpec{
					Assets: 12, Damages: 15, Threats: 20, PathsPerThreat: 2, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				for step := 0; step < 30; step++ {
					desc := randomMutation(a, rng, step)
					inc, err := f.RateAnalysis(ctx, a)
					if err != nil {
						t.Fatalf("seed %d step %d (%s): incremental: %v", seed, step, desc, err)
					}
					cold, err := a.Clone().Run()
					if err != nil {
						t.Fatalf("seed %d step %d (%s): cold: %v", seed, step, desc, err)
					}
					if !bytes.Equal(resultsJSON(t, inc), resultsJSON(t, cold)) {
						t.Fatalf("seed %d step %d (%s): results diverge\ninc:\n%s\ncold:\n%s",
							seed, step, desc, resultsJSON(t, inc), resultsJSON(t, cold))
					}
					if !bytes.Equal(conceptJSON(t, inc), conceptJSON(t, cold)) {
						t.Fatalf("seed %d step %d (%s): concepts diverge", seed, step, desc)
					}
				}
			}
		})
	}
}

func TestRatePlanDeterministicAcrossPoolSizes(t *testing.T) {
	var want []byte
	for _, pool := range []int{1, 4, 8} {
		a, err := tara.GenerateAnalysis(tara.GenSpec{
			Assets: 10, Damages: 12, Threats: 30, PathsPerThreat: 2, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		f := taraFramework(t, pool)
		res, err := f.RateAnalysis(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		got := resultsJSON(t, res)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("pool %d produced different results", pool)
		}
	}
}

func TestRatePlanCancellation(t *testing.T) {
	a, err := tara.GenerateAnalysis(tara.GenSpec{
		Assets: 10, Damages: 10, Threats: 50, PathsPerThreat: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := taraFramework(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.RateAnalysis(ctx, a); err == nil {
		t.Fatal("cancelled rating succeeded")
	}
	// The dirty set survives a failed pass: the next rating still
	// covers every threat and matches a cold run.
	res, err := f.RateAnalysis(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := a.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultsJSON(t, res), resultsJSON(t, cold)) {
		t.Fatal("results after retry diverge from cold run")
	}
}

func TestApplyTunings(t *testing.T) {
	a, err := tara.GenerateAnalysis(tara.GenSpec{
		Assets: 5, Damages: 5, Threats: 5, PathsPerThreat: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	base := a.RatingCalls()

	hot, err := tara.NewVectorTable("sai", map[tara.AttackVector]tara.FeasibilityRating{
		tara.VectorPhysical: tara.FeasibilityHigh, tara.VectorLocal: tara.FeasibilityHigh,
		tara.VectorAdjacent: tara.FeasibilityHigh, tara.VectorNetwork: tara.FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	tunings := []*ThreatTuning{
		{Threat: a.Threats[0], Table: hot},
		{Threat: &tara.ThreatScenario{ID: "TS-UNRELATED"}, Table: hot}, // not in this analysis
		nil,
	}
	changed, err := ApplyTunings(a, tunings)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != a.Threats[0].ID {
		t.Fatalf("changed = %v", changed)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if got := a.RatingCalls() - base; got != 1 {
		t.Fatalf("tuning re-rated %d threats, want 1", got)
	}

	// Re-applying the same (rating-equal) tunings is a no-op.
	changed, err = ApplyTunings(a, tunings)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("re-apply changed %v, want nothing", changed)
	}
}
