package core

import (
	"context"

	"github.com/psp-framework/psp/internal/tara"
)

// This file bridges the incremental TARA engine to the framework: the
// per-threat rating function fans out across the same bounded worker
// pool as the social workflow, and ThreatTuning deltas from the social
// loop become per-threat vector table overrides that mark exactly their
// threat IDs dirty.

// RatePlan rates the plan's dirty threats on the framework worker pool
// and commits the results. Results are written into per-index slots, so
// the merge order — and the committed result set — is deterministic
// regardless of pool size. The first rating error cancels the fan-out;
// the plan's dirty set is left intact for a retry.
func (f *Framework) RatePlan(ctx context.Context, p *tara.Plan) ([]*tara.ThreatResult, error) {
	rated := make([]*tara.ThreatResult, len(p.Dirty))
	err := forEachLimited(ctx, f.concurrency, len(p.Dirty), func(_ context.Context, i int) error {
		r, err := p.Rate(p.Dirty[i])
		if err != nil {
			return err
		}
		rated[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.Commit(rated)
}

// RateAnalysis plans and rates an analysis in one call: the parallel,
// incremental replacement for Analysis.Run.
func (f *Framework) RateAnalysis(ctx context.Context, a *tara.Analysis) ([]*tara.ThreatResult, error) {
	p, err := a.Plan()
	if err != nil {
		return nil, err
	}
	return f.RatePlan(ctx, p)
}

// ApplyTunings installs the PSP-tuned vector tables of a social run as
// per-threat overrides on the analysis, returning the IDs of the
// threats whose effective table actually changed (and were therefore
// marked dirty). Tunings for threats the analysis does not contain are
// skipped, as are tables rating-equal to the installed override — so
// repeated social generations with unchanged learning re-rate nothing.
func ApplyTunings(a *tara.Analysis, tunings []*ThreatTuning) ([]string, error) {
	var changed []string
	for _, tn := range tunings {
		if tn == nil || tn.Threat == nil || tn.Table == nil {
			continue
		}
		if a.Threat(tn.Threat.ID) == nil {
			continue
		}
		did, err := a.SetThreatTable(tn.Threat.ID, tn.Table)
		if err != nil {
			return changed, err
		}
		if did {
			changed = append(changed, tn.Threat.ID)
		}
	}
	return changed, nil
}
