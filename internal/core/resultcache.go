package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// cacheFill is one cached drained listing. The pointer doubles as a
// freshness token: invalidation deletes the fill and a re-query creates
// a new one, so derived memos (graphs, SAI entries, threat tunings)
// prove their inputs unchanged by holding the fill pointer they were
// computed from. The posts slice is owned by the fill: SearchAll
// accumulates page copies, so the listing aliases no store memory even
// now that the sharded store streams pages straight off its per-shard
// indices — fill identity stays a pure function of invalidation, not of
// store internals.
type cacheFill struct {
	query   social.Query        // canonical form; the export/import key
	matcher social.QueryMatcher // compiled predicate for invalidation
	posts   []*social.Post
}

// QueryCache caches fully drained platform listings keyed by the
// canonical query, serving pages from memory until a newly ingested
// post that would match the query invalidates the entry. Because the
// store is append-only and invalidation applies the exact Search
// predicate (social.Query.MatchesPost), a cached listing is always
// byte-identical to what a fresh drain would return.
//
// Search is safe for concurrent use (the workflow fans queries out);
// Invalidate must not run concurrently with a workflow run using the
// cache — the monitor serializes updates on one scheduler goroutine.
type QueryCache struct {
	mu      sync.RWMutex
	backend social.Searcher
	fills   map[string]*cacheFill
}

var _ social.Searcher = (*QueryCache)(nil)

// NewQueryCache wraps a platform behind a listing cache.
func NewQueryCache(backend social.Searcher) *QueryCache {
	return &QueryCache{backend: backend, fills: make(map[string]*cacheFill)}
}

// cacheKey renders a canonical query as a map key.
func cacheKey(c social.Query) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%q|%q|%s", c.AnyTags, c.MustTerms, c.Region)
	if !c.Since.IsZero() {
		fmt.Fprintf(&sb, "|s%d", c.Since.UnixNano())
	}
	if !c.Until.IsZero() {
		fmt.Fprintf(&sb, "|u%d", c.Until.UnixNano())
	}
	return sb.String()
}

// Search implements social.Searcher: pages are cut from the cached
// drained listing, with the same keyset tokens the store would emit.
func (c *QueryCache) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	canon := q.Canonical()
	key := cacheKey(canon)
	c.mu.RLock()
	fill := c.fills[key]
	c.mu.RUnlock()
	if fill == nil {
		drain := canon
		drain.MaxResults = social.MaxPageSize
		posts, err := social.SearchAll(ctx, c.backend, drain)
		if err != nil {
			return nil, err
		}
		fill = &cacheFill{query: canon, matcher: canon.Matcher(), posts: posts}
		c.mu.Lock()
		if cur := c.fills[key]; cur != nil {
			fill = cur // a concurrent drain won; keep one fill identity
		} else {
			c.fills[key] = fill
		}
		c.mu.Unlock()
	}
	return social.PagePosts(fill.posts, q.MaxResults, q.PageToken)
}

// lookup returns the current fill for a key, or nil.
func (c *QueryCache) lookup(key string) *cacheFill {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.fills[key]
}

// Invalidate drops every cached listing a newly ingested post would
// appear in, returning the number of listings dropped. Entries the
// posts cannot match stay valid — the exactness that lets the
// incremental path skip their re-computation entirely.
func (c *QueryCache) Invalidate(posts ...*social.Post) int {
	return c.InvalidateProfiles(social.ProfilePosts(posts))
}

// InvalidateProfiles is Invalidate over pre-tokenized posts, letting
// callers that also run a dirty-set pass (the monitor's flush) profile
// the delta once.
func (c *QueryCache) InvalidateProfiles(profiles []*social.PostProfile) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, fill := range c.fills {
		for _, pp := range profiles {
			if fill.matcher.Matches(pp) {
				delete(c.fills, key)
				dropped++
				break
			}
		}
	}
	return dropped
}

// Len returns the number of cached listings.
func (c *QueryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.fills)
}

// querySlice is one platform query's contribution to a workflow run:
// the (possibly authenticity-filtered) posts, the poisoning-defence
// drop count, and the lazily built derivations the incremental path
// memoizes — the group's co-occurrence graph and SAI entry.
type querySlice struct {
	fill     *cacheFill // nil on uncached runs
	posts    []*social.Post
	filtered int
	graph    *nlp.CooccurrenceGraph
	entry    *sai.Entry
}

// threatMemo caches one threat scenario's tuning against its query fill.
type threatMemo struct {
	sig    string
	fill   *cacheFill
	threat *tara.ThreatScenario // identity of the input scenario
	tuning *ThreatTuning
}

// ResultCache is the state behind incremental re-assessment: a listing
// cache plus per-slice memos of everything the workflow derives from a
// single query's posts. RunSocialDelta reuses a memo only while the
// query's cacheFill pointer is unchanged — i.e. while no ingested post
// matched the query — which is exactly the condition under which the
// slice's inputs, and therefore its derivations, are provably
// identical.
type ResultCache struct {
	qc      *QueryCache
	mu      sync.Mutex
	slices  map[string]*querySlice
	threats map[string]*threatMemo
	// Per-run usage tracking: a successful run sweeps the fills and
	// memos it did not touch, so a long-running daemon whose learned
	// tag sets drift does not accumulate stale listings forever.
	usedKeys    map[string]bool
	usedSigs    map[string]bool
	usedThreats map[string]bool
}

// NewResultCache builds a result cache over a platform backend. Pass it
// to Framework.RunSocialDelta; feed newly ingested posts to Invalidate.
func NewResultCache(backend social.Searcher) *ResultCache {
	return &ResultCache{
		qc:      NewQueryCache(backend),
		slices:  make(map[string]*querySlice),
		threats: make(map[string]*threatMemo),
	}
}

// Queries exposes the underlying listing cache (also a social.Searcher).
func (rc *ResultCache) Queries() *QueryCache { return rc.qc }

// Invalidate drops the cached listings (and, transitively, the memoized
// derivations) affected by newly ingested posts. It returns the number
// of cached listings dropped; zero means a subsequent RunSocialDelta is
// guaranteed to reproduce the previous result without any work.
func (rc *ResultCache) Invalidate(posts ...*social.Post) int {
	return rc.qc.Invalidate(posts...)
}

// InvalidateProfiles is Invalidate over pre-tokenized posts.
func (rc *ResultCache) InvalidateProfiles(profiles []*social.PostProfile) int {
	return rc.qc.InvalidateProfiles(profiles)
}

// beginRun resets the usage tracking for one workflow run.
func (rc *ResultCache) beginRun() {
	rc.mu.Lock()
	rc.usedKeys = make(map[string]bool)
	rc.usedSigs = make(map[string]bool)
	rc.usedThreats = make(map[string]bool)
	rc.mu.Unlock()
}

// endRun drops every fill and memo the completed run did not use —
// leftovers of previous inputs or drifted learned tag sets that would
// otherwise pin listings (and slow invalidation) forever.
func (rc *ResultCache) endRun() {
	rc.mu.Lock()
	for sig := range rc.slices {
		if !rc.usedSigs[sig] {
			delete(rc.slices, sig)
		}
	}
	for id := range rc.threats {
		if !rc.usedThreats[id] {
			delete(rc.threats, id)
		}
	}
	used := rc.usedKeys
	rc.mu.Unlock()
	rc.qc.retain(used)
}

// markUsed records one slice access of the current run.
func (rc *ResultCache) markUsed(key, sig string) {
	rc.mu.Lock()
	if rc.usedKeys != nil {
		rc.usedKeys[key] = true
		rc.usedSigs[sig] = true
	}
	rc.mu.Unlock()
}

// retain drops all fills except the keyed ones.
func (c *QueryCache) retain(keys map[string]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.fills {
		if !keys[key] {
			delete(c.fills, key)
		}
	}
}

// slice returns the memoized querySlice for a signature if its fill is
// still current.
func (rc *ResultCache) slice(sig string, fill *cacheFill) *querySlice {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if qs := rc.slices[sig]; qs != nil && qs.fill == fill && fill != nil {
		return qs
	}
	return nil
}

func (rc *ResultCache) storeSlice(sig string, qs *querySlice) {
	rc.mu.Lock()
	rc.slices[sig] = qs
	rc.mu.Unlock()
}

func (rc *ResultCache) threatTuning(id, sig string, fill *cacheFill, threat *tara.ThreatScenario) *ThreatTuning {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.usedThreats != nil {
		rc.usedThreats[id] = true
	}
	tm := rc.threats[id]
	if tm != nil && tm.sig == sig && tm.fill == fill && fill != nil && tm.threat == threat {
		return tm.tuning
	}
	return nil
}

func (rc *ResultCache) storeThreat(id, sig string, fill *cacheFill, threat *tara.ThreatScenario, tuning *ThreatTuning) {
	rc.mu.Lock()
	rc.threats[id] = &threatMemo{sig: sig, fill: fill, threat: threat, tuning: tuning}
	rc.mu.Unlock()
}
