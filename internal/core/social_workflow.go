package core

import (
	"context"
	"fmt"
	"time"

	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// SocialInput parameterizes one run of the Fig. 7 workflow.
type SocialInput struct {
	// Application is the target application ("excavator", "car", ...);
	// empty matches all applications (block 1).
	Application string
	// Region restricts the query region; empty matches all regions.
	Region social.Region
	// Since/Until bound the sentiment time window — the parameter whose
	// effect Fig. 9-B vs 9-C demonstrates. Zero values are open ends.
	Since, Until time.Time
	// Threats is the manually identified threat scenario list from the
	// product security team (block 10). Scenarios without keywords are
	// skipped.
	Threats []*tara.ThreatScenario
	// DisableLearning turns off the auto-learning loop (ablation A3).
	DisableLearning bool
	// FilterInauthentic enables the poisoning defence from the paper's
	// roadmap: duplicate-text, author-burst and engagement-anomaly posts
	// are dropped before scoring.
	FilterInauthentic bool
}

// ThreatTuning is the per-threat output of the workflow: the updated
// weight table (block 12) with its provenance.
type ThreatTuning struct {
	// Threat is the tuned scenario.
	Threat *tara.ThreatScenario
	// Insider reports the social classification of the scenario's posts.
	Insider bool
	// Posts is the number of posts that informed the tuning.
	Posts int
	// VectorShares is the attraction share per vector.
	VectorShares map[tara.AttackVector]float64
	// Factors are the SAI corrective factors (share / uniform prior).
	Factors map[tara.AttackVector]float64
	// Table is the regenerated feasibility table. Outsider scenarios
	// keep the standard G.9 weights (Fig. 8-A); insider scenarios get
	// SAI-tuned weights (Fig. 8-B).
	Table *tara.VectorTable
}

// SocialResult is the output of the Fig. 7 workflow.
type SocialResult struct {
	// Index is the sorted Social Attraction Index (block 6).
	Index *sai.Index
	// Learned lists the keywords added by auto-learning (block 5),
	// attributed topic → tags.
	Learned map[string][]string
	// Keywords is the extended keyword database used by the run.
	Keywords *KeywordDB
	// OutsiderTable is the unmodified G.9 table applied to outsider
	// threats (Fig. 8-A).
	OutsiderTable *tara.VectorTable
	// Tunings carries the per-threat weight tables (Fig. 8-B, Fig. 9).
	Tunings []*ThreatTuning
	// InauthenticFiltered counts the posts dropped by the poisoning
	// defence across all queries of the run (0 when the filter is off).
	InauthenticFiltered int
	// Window echoes the analysis window for report provenance.
	Since, Until time.Time
}

// RunSocial executes the social workflow of Fig. 7. The platform
// queries of blocks 1–4 (keyword groups), block 5 (re-queries after
// auto-learning) and blocks 10–12 (per-threat tuning) fan out across a
// worker pool of Config.Concurrency goroutines; results are assembled
// in input order, so the output is identical at any concurrency.
func (f *Framework) RunSocial(ctx context.Context, in SocialInput) (*SocialResult, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: social workflow requires a configured Searcher")
	}
	return f.runSocial(ctx, in, f.searcher, nil)
}

// RunSocialDelta is the delta-aware entry point of the continuous
// monitoring subsystem: the same Fig. 7 workflow, but with platform
// queries served through the result cache and every per-slice
// derivation — keyword-group co-occurrence graphs, SAI entries, threat
// tunings — reused while the slice's cached listing is untouched by
// ingest. After rc.Invalidate(newPosts), only the slices a new post can
// actually match are recomputed, so a steady trickle of posts costs
// incremental work, yet the result is identical to a cold RunSocial
// over the merged corpus (the equivalence the monitor tests pin down).
//
// Ignoring the framework's configured Searcher, queries go to the
// backend the cache wraps. Runs against the same cache must be
// serialized with Invalidate calls; the monitor's scheduler goroutine
// does both.
func (f *Framework) RunSocialDelta(ctx context.Context, in SocialInput, rc *ResultCache) (*SocialResult, error) {
	if rc == nil {
		return nil, fmt.Errorf("core: delta run requires a result cache")
	}
	return f.runSocial(ctx, in, rc.qc, rc)
}

// runSocial is the shared workflow implementation. With rc == nil every
// slice is computed from scratch; with a result cache, fresh memos are
// reused and recomputed ones stored back.
func (f *Framework) runSocial(ctx context.Context, in SocialInput, searcher social.Searcher, rc *ResultCache) (*SocialResult, error) {
	if rc != nil {
		rc.beginRun()
	}
	db := f.keywords.Clone()
	var filtered int
	learning := !in.DisableLearning && f.learnMax > 0

	// Blocks 1–4: query every keyword group over the target inputs.
	groups := db.Groups()
	groupOut := make([]*querySlice, len(groups))
	err := forEachLimited(ctx, f.concurrency, len(groups), func(ctx context.Context, i int) error {
		qs, err := f.querySlice(ctx, searcher, rc, groups[i].AllTags(), in, learning)
		if err != nil {
			return fmt.Errorf("core: query topic %s: %w", groups[i].Topic, err)
		}
		groupOut[i] = qs
		return nil
	})
	if err != nil {
		return nil, err
	}
	finalOut := make(map[string]*querySlice, len(groups))
	for i, g := range groups {
		finalOut[g.Topic] = groupOut[i]
		filtered += groupOut[i].filtered
	}

	// Block 5: auto-learn new keywords from the matched corpus and
	// re-query the groups that gained tags. Observation and database
	// extension walk the groups in registration order so learning stays
	// deterministic; the re-queries themselves fan out. Each group
	// contributes a per-group co-occurrence graph (memoized while its
	// listing is fresh); merging them is count-exact, so the learner
	// sees the same graph a direct pass over all posts would build.
	learned := map[string][]string{}
	if learning {
		learner := sai.NewLearner()
		for i := range groups {
			learner.ObserveGraph(groupOut[i].graph)
		}
		candidates, err := learner.Learn(db.SeedTags(), f.learnMax)
		if err != nil {
			return nil, fmt.Errorf("core: keyword learning: %w", err)
		}
		attributed := learner.Attribute(candidates, db.SeedGroupMap())
		var requery []string
		for _, g := range groups {
			tags, ok := attributed[g.Topic]
			if !ok {
				continue
			}
			added, err := db.Extend(g.Topic, tags)
			if err != nil {
				return nil, err
			}
			if len(added) == 0 {
				continue
			}
			learned[g.Topic] = added
			requery = append(requery, g.Topic)
		}
		requeryOut := make([]*querySlice, len(requery))
		err = forEachLimited(ctx, f.concurrency, len(requery), func(ctx context.Context, i int) error {
			qs, err := f.querySlice(ctx, searcher, rc, db.Group(requery[i]).AllTags(), in, false)
			if err != nil {
				return fmt.Errorf("core: re-query topic %s: %w", requery[i], err)
			}
			requeryOut[i] = qs
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, topic := range requery {
			finalOut[topic] = requeryOut[i]
			filtered += requeryOut[i].filtered
		}
	}

	// Blocks 6–9: SAI computation with insider/outsider separation.
	// Entries are per-topic pure functions of the final posts, memoized
	// alongside their slice; probabilities normalize over all entries in
	// registration order (identical for fresh and memoized entries).
	entries := make([]sai.Entry, 0, len(groups))
	for _, g := range groups {
		qs := finalOut[g.Topic]
		if qs.entry == nil {
			e := f.builder.BuildEntry(sai.TopicPosts{
				Topic: g.Topic,
				Tags:  g.AllTags(),
				Posts: qs.posts,
			})
			qs.entry = &e
		}
		entries = append(entries, *qs.entry)
	}
	index, err := sai.AssembleIndex(entries)
	if err != nil {
		return nil, err
	}

	// Blocks 10–12: per-threat weight table generation.
	result := &SocialResult{
		Index:         index,
		Learned:       learned,
		Keywords:      db,
		OutsiderTable: tara.StandardVectorTable(),
		Since:         in.Since,
		Until:         in.Until,
	}
	var threats []*tara.ThreatScenario
	for _, threat := range in.Threats {
		if threat == nil || len(threat.Keywords) == 0 {
			continue
		}
		threats = append(threats, threat)
	}
	tunings := make([]*ThreatTuning, len(threats))
	threatFiltered := make([]int, len(threats))
	err = forEachLimited(ctx, f.concurrency, len(threats), func(ctx context.Context, i int) error {
		tuning, dropped, err := f.tuneThreat(ctx, searcher, rc, threats[i], in)
		if err != nil {
			return err
		}
		tunings[i] = tuning
		threatFiltered[i] = dropped
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, tuning := range tunings {
		result.Tunings = append(result.Tunings, tuning)
		filtered += threatFiltered[i]
	}
	result.InauthenticFiltered = filtered
	if rc != nil {
		// Sweep fills and memos this run did not touch (only after a
		// fully successful run — a failed run must not evict state a
		// retry will reuse).
		rc.endRun()
	}
	return result, nil
}

// tuneThreat queries a threat scenario's keyword posts and regenerates
// its feasibility table. It returns the tuning plus the number of posts
// the poisoning defence dropped. With a result cache, the tuning is
// reused while the threat's listing is fresh and the scenario unchanged.
func (f *Framework) tuneThreat(ctx context.Context, searcher social.Searcher, rc *ResultCache, threat *tara.ThreatScenario, in SocialInput) (*ThreatTuning, int, error) {
	qs, err := f.querySlice(ctx, searcher, rc, threat.Keywords, in, false)
	if err != nil {
		return nil, 0, fmt.Errorf("core: query threat %s: %w", threat.ID, err)
	}
	var sig string
	if rc != nil {
		_, sig = tagSigKey(threat.Keywords, in)
		if tuning := rc.threatTuning(threat.ID, sig, qs.fill, threat); tuning != nil {
			return tuning, qs.filtered, nil
		}
	}
	owners := sai.NewOwnerClassifier()
	tuning := &ThreatTuning{
		Threat:       threat,
		Posts:        len(qs.posts),
		Insider:      len(qs.posts) > 0 && owners.MajorityInsider(qs.posts),
		VectorShares: f.builder.VectorShares(qs.posts),
	}
	tuning.Factors = sai.CorrectiveFactors(tuning.VectorShares)
	if tuning.Insider {
		name := fmt.Sprintf("PSP insider: %s%s", threat.Name, windowSuffix(in.Since, in.Until))
		table, err := sai.GenerateVectorTable(name, tuning.VectorShares, f.bands)
		if err != nil {
			return nil, 0, fmt.Errorf("core: generate table for threat %s: %w", threat.ID, err)
		}
		tuning.Table = table
	} else {
		// Retuning outsider entries "does not make sense": they keep the
		// standard weights.
		tuning.Table = tara.StandardVectorTable()
	}
	if rc != nil {
		rc.storeThreat(threat.ID, sig, qs.fill, threat, tuning)
	}
	return tuning, qs.filtered, nil
}

// tagQuery builds the platform query of one tag set under the workflow
// filters, requesting the maximum page size to minimize round trips to
// remote platforms.
func tagQuery(tags []string, in SocialInput) social.Query {
	q := social.Query{
		AnyTags:    tags,
		Region:     in.Region,
		Since:      in.Since,
		Until:      in.Until,
		MaxResults: social.MaxPageSize,
	}
	if in.Application != "" {
		q.MustTerms = []string{in.Application}
	}
	return q
}

// tagSigKey canonicalizes a tag query once, returning its listing
// cache key and its memo signature — the key plus the poisoning-defence
// flag (the only SocialInput field that changes a slice's derivations
// without changing its listing). Slice memos keyed this way stay
// group-unique because NewKeywordDB rejects any tag shared between two
// groups, so no two groups (or their learned extensions, which Extend
// keeps disjoint) can produce the same signature; threats may share a
// signature with anything, but the threat path reads only the slice's
// posts, never its group-specific entry or graph.
func tagSigKey(tags []string, in SocialInput) (key, sig string) {
	key = cacheKey(tagQuery(tags, in).Canonical())
	sig = key
	if in.FilterInauthentic {
		sig += "|f"
	}
	return key, sig
}

// querySlice drains a paginated tag search with the workflow filters,
// applying the poisoning defence when the input enables it and building
// the group's co-occurrence graph when learning needs it. With a result
// cache, a memoized slice is returned as long as its listing is fresh;
// recomputed slices are stored back for the next run.
func (f *Framework) querySlice(ctx context.Context, searcher social.Searcher, rc *ResultCache, tags []string, in SocialInput, withGraph bool) (*querySlice, error) {
	if len(tags) == 0 {
		return &querySlice{}, nil
	}
	q := tagQuery(tags, in)
	var sig, key string
	var fill *cacheFill
	if rc != nil {
		key, sig = tagSigKey(tags, in)
		rc.markUsed(key, sig)
		fill = rc.qc.lookup(key)
		if qs := rc.slice(sig, fill); qs != nil {
			if withGraph && qs.graph == nil {
				qs.graph = sai.BuildGroupGraph(qs.posts)
			}
			return qs, nil
		}
	}
	posts, err := social.SearchAll(ctx, searcher, q)
	if err != nil {
		return nil, err
	}
	qs := &querySlice{posts: posts}
	if in.FilterInauthentic {
		reportOut, err := sai.FilterAuthentic(posts, sai.DefaultAuthenticityConfig())
		if err != nil {
			return nil, err
		}
		qs.posts, qs.filtered = reportOut.Clean, len(reportOut.Flagged)
	}
	if withGraph {
		qs.graph = sai.BuildGroupGraph(qs.posts)
	}
	if rc != nil {
		qs.fill = rc.qc.lookup(key)
		rc.storeSlice(sig, qs)
	}
	return qs, nil
}

// TopicTrend computes the quarterly attraction trend of a tag set under
// the workflow filters — the "historical trend" search parameter of the
// paper. The poisoning defence applies when the input enables it.
func (f *Framework) TopicTrend(ctx context.Context, tags []string, in SocialInput) (*sai.Trend, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: trend analysis requires a configured Searcher")
	}
	if len(tags) == 0 {
		return nil, fmt.Errorf("core: trend analysis needs at least one tag")
	}
	qs, err := f.querySlice(ctx, f.searcher, nil, tags, in, false)
	if err != nil {
		return nil, err
	}
	return f.builder.ComputeTrend(qs.posts)
}

// PersistLearned merges a run's learned keywords back into the
// framework's database, making them available to future runs (the
// paper's "future runs" loop).
func (f *Framework) PersistLearned(result *SocialResult) error {
	if result == nil {
		return fmt.Errorf("core: nil social result")
	}
	for topic, tags := range result.Learned {
		if _, err := f.keywords.Extend(topic, tags); err != nil {
			return err
		}
	}
	return nil
}

func windowSuffix(since, until time.Time) string {
	switch {
	case since.IsZero() && until.IsZero():
		return " (all time)"
	case until.IsZero():
		return fmt.Sprintf(" (since %s)", since.Format("2006-01-02"))
	case since.IsZero():
		return fmt.Sprintf(" (until %s)", until.Format("2006-01-02"))
	default:
		return fmt.Sprintf(" (%s to %s)", since.Format("2006-01-02"), until.Format("2006-01-02"))
	}
}
