package core

import (
	"context"
	"fmt"
	"time"

	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// SocialInput parameterizes one run of the Fig. 7 workflow.
type SocialInput struct {
	// Application is the target application ("excavator", "car", ...);
	// empty matches all applications (block 1).
	Application string
	// Region restricts the query region; empty matches all regions.
	Region social.Region
	// Since/Until bound the sentiment time window — the parameter whose
	// effect Fig. 9-B vs 9-C demonstrates. Zero values are open ends.
	Since, Until time.Time
	// Threats is the manually identified threat scenario list from the
	// product security team (block 10). Scenarios without keywords are
	// skipped.
	Threats []*tara.ThreatScenario
	// DisableLearning turns off the auto-learning loop (ablation A3).
	DisableLearning bool
	// FilterInauthentic enables the poisoning defence from the paper's
	// roadmap: duplicate-text, author-burst and engagement-anomaly posts
	// are dropped before scoring.
	FilterInauthentic bool
}

// ThreatTuning is the per-threat output of the workflow: the updated
// weight table (block 12) with its provenance.
type ThreatTuning struct {
	// Threat is the tuned scenario.
	Threat *tara.ThreatScenario
	// Insider reports the social classification of the scenario's posts.
	Insider bool
	// Posts is the number of posts that informed the tuning.
	Posts int
	// VectorShares is the attraction share per vector.
	VectorShares map[tara.AttackVector]float64
	// Factors are the SAI corrective factors (share / uniform prior).
	Factors map[tara.AttackVector]float64
	// Table is the regenerated feasibility table. Outsider scenarios
	// keep the standard G.9 weights (Fig. 8-A); insider scenarios get
	// SAI-tuned weights (Fig. 8-B).
	Table *tara.VectorTable
}

// SocialResult is the output of the Fig. 7 workflow.
type SocialResult struct {
	// Index is the sorted Social Attraction Index (block 6).
	Index *sai.Index
	// Learned lists the keywords added by auto-learning (block 5),
	// attributed topic → tags.
	Learned map[string][]string
	// Keywords is the extended keyword database used by the run.
	Keywords *KeywordDB
	// OutsiderTable is the unmodified G.9 table applied to outsider
	// threats (Fig. 8-A).
	OutsiderTable *tara.VectorTable
	// Tunings carries the per-threat weight tables (Fig. 8-B, Fig. 9).
	Tunings []*ThreatTuning
	// InauthenticFiltered counts the posts dropped by the poisoning
	// defence across all queries of the run (0 when the filter is off).
	InauthenticFiltered int
	// Window echoes the analysis window for report provenance.
	Since, Until time.Time
}

// RunSocial executes the social workflow of Fig. 7. The platform
// queries of blocks 1–4 (keyword groups), block 5 (re-queries after
// auto-learning) and blocks 10–12 (per-threat tuning) fan out across a
// worker pool of Config.Concurrency goroutines; results are assembled
// in input order, so the output is identical at any concurrency.
func (f *Framework) RunSocial(ctx context.Context, in SocialInput) (*SocialResult, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: social workflow requires a configured Searcher")
	}
	db := f.keywords.Clone()
	var filtered int

	// Blocks 1–4: query every keyword group over the target inputs.
	groups := db.Groups()
	groupOut := make([]queryResult, len(groups))
	err := forEachLimited(ctx, f.concurrency, len(groups), func(ctx context.Context, i int) error {
		posts, dropped, err := f.queryTags(ctx, groups[i].AllTags(), in)
		if err != nil {
			return fmt.Errorf("core: query topic %s: %w", groups[i].Topic, err)
		}
		groupOut[i] = queryResult{posts: posts, filtered: dropped}
		return nil
	})
	if err != nil {
		return nil, err
	}
	groupPosts := make(map[string][]*social.Post, len(groups))
	for i, g := range groups {
		groupPosts[g.Topic] = groupOut[i].posts
		filtered += groupOut[i].filtered
	}

	// Block 5: auto-learn new keywords from the matched corpus and
	// re-query the groups that gained tags. Observation and database
	// extension walk the groups in registration order so learning stays
	// deterministic; the re-queries themselves fan out.
	learned := map[string][]string{}
	if !in.DisableLearning && f.learnMax > 0 {
		learner := sai.NewLearner()
		for _, g := range groups {
			learner.Observe(groupPosts[g.Topic])
		}
		candidates, err := learner.Learn(db.SeedTags(), f.learnMax)
		if err != nil {
			return nil, fmt.Errorf("core: keyword learning: %w", err)
		}
		attributed := learner.Attribute(candidates, db.SeedGroupMap())
		var requery []string
		for _, g := range groups {
			tags, ok := attributed[g.Topic]
			if !ok {
				continue
			}
			added, err := db.Extend(g.Topic, tags)
			if err != nil {
				return nil, err
			}
			if len(added) == 0 {
				continue
			}
			learned[g.Topic] = added
			requery = append(requery, g.Topic)
		}
		requeryOut := make([]queryResult, len(requery))
		err = forEachLimited(ctx, f.concurrency, len(requery), func(ctx context.Context, i int) error {
			posts, dropped, err := f.queryTags(ctx, db.Group(requery[i]).AllTags(), in)
			if err != nil {
				return fmt.Errorf("core: re-query topic %s: %w", requery[i], err)
			}
			requeryOut[i] = queryResult{posts: posts, filtered: dropped}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, topic := range requery {
			groupPosts[topic] = requeryOut[i].posts
			filtered += requeryOut[i].filtered
		}
	}

	// Blocks 6–9: SAI computation with insider/outsider separation.
	topicPosts := make([]sai.TopicPosts, 0, len(groups))
	for _, g := range groups {
		topicPosts = append(topicPosts, sai.TopicPosts{
			Topic: g.Topic,
			Tags:  g.AllTags(),
			Posts: groupPosts[g.Topic],
		})
	}
	index, err := f.builder.Build(topicPosts)
	if err != nil {
		return nil, err
	}

	// Blocks 10–12: per-threat weight table generation.
	result := &SocialResult{
		Index:         index,
		Learned:       learned,
		Keywords:      db,
		OutsiderTable: tara.StandardVectorTable(),
		Since:         in.Since,
		Until:         in.Until,
	}
	var threats []*tara.ThreatScenario
	for _, threat := range in.Threats {
		if threat == nil || len(threat.Keywords) == 0 {
			continue
		}
		threats = append(threats, threat)
	}
	tunings := make([]*ThreatTuning, len(threats))
	threatFiltered := make([]int, len(threats))
	err = forEachLimited(ctx, f.concurrency, len(threats), func(ctx context.Context, i int) error {
		tuning, dropped, err := f.tuneThreat(ctx, threats[i], in)
		if err != nil {
			return err
		}
		tunings[i] = tuning
		threatFiltered[i] = dropped
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, tuning := range tunings {
		result.Tunings = append(result.Tunings, tuning)
		filtered += threatFiltered[i]
	}
	result.InauthenticFiltered = filtered
	return result, nil
}

// queryResult pairs one platform query's posts with its poisoning-
// defence drop count, so parallel fan-outs can aggregate both
// deterministically.
type queryResult struct {
	posts    []*social.Post
	filtered int
}

// tuneThreat queries a threat scenario's keyword posts and regenerates
// its feasibility table. It returns the tuning plus the number of posts
// the poisoning defence dropped.
func (f *Framework) tuneThreat(ctx context.Context, threat *tara.ThreatScenario, in SocialInput) (*ThreatTuning, int, error) {
	posts, filtered, err := f.queryTags(ctx, threat.Keywords, in)
	if err != nil {
		return nil, 0, fmt.Errorf("core: query threat %s: %w", threat.ID, err)
	}
	owners := sai.NewOwnerClassifier()
	tuning := &ThreatTuning{
		Threat:       threat,
		Posts:        len(posts),
		Insider:      len(posts) > 0 && owners.MajorityInsider(posts),
		VectorShares: f.builder.VectorShares(posts),
	}
	tuning.Factors = sai.CorrectiveFactors(tuning.VectorShares)
	if !tuning.Insider {
		// Retuning outsider entries "does not make sense": they keep the
		// standard weights.
		tuning.Table = tara.StandardVectorTable()
		return tuning, filtered, nil
	}
	name := fmt.Sprintf("PSP insider: %s%s", threat.Name, windowSuffix(in.Since, in.Until))
	table, err := sai.GenerateVectorTable(name, tuning.VectorShares, f.bands)
	if err != nil {
		return nil, 0, fmt.Errorf("core: generate table for threat %s: %w", threat.ID, err)
	}
	tuning.Table = table
	return tuning, filtered, nil
}

// queryTags drains a paginated tag search with the workflow filters,
// applying the poisoning defence when the input enables it. It returns
// the surviving posts and the number of posts the defence dropped.
func (f *Framework) queryTags(ctx context.Context, tags []string, in SocialInput) ([]*social.Post, int, error) {
	if len(tags) == 0 {
		return nil, 0, nil
	}
	q := social.Query{
		AnyTags: tags,
		Region:  in.Region,
		Since:   in.Since,
		Until:   in.Until,
	}
	if in.Application != "" {
		q.MustTerms = []string{in.Application}
	}
	posts, err := social.SearchAll(ctx, f.searcher, q)
	if err != nil {
		return nil, 0, err
	}
	if !in.FilterInauthentic {
		return posts, 0, nil
	}
	reportOut, err := sai.FilterAuthentic(posts, sai.DefaultAuthenticityConfig())
	if err != nil {
		return nil, 0, err
	}
	return reportOut.Clean, len(reportOut.Flagged), nil
}

// TopicTrend computes the quarterly attraction trend of a tag set under
// the workflow filters — the "historical trend" search parameter of the
// paper. The poisoning defence applies when the input enables it.
func (f *Framework) TopicTrend(ctx context.Context, tags []string, in SocialInput) (*sai.Trend, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: trend analysis requires a configured Searcher")
	}
	if len(tags) == 0 {
		return nil, fmt.Errorf("core: trend analysis needs at least one tag")
	}
	posts, _, err := f.queryTags(ctx, tags, in)
	if err != nil {
		return nil, err
	}
	return f.builder.ComputeTrend(posts)
}

// PersistLearned merges a run's learned keywords back into the
// framework's database, making them available to future runs (the
// paper's "future runs" loop).
func (f *Framework) PersistLearned(result *SocialResult) error {
	if result == nil {
		return fmt.Errorf("core: nil social result")
	}
	for topic, tags := range result.Learned {
		if _, err := f.keywords.Extend(topic, tags); err != nil {
			return err
		}
	}
	return nil
}

func windowSuffix(since, until time.Time) string {
	switch {
	case since.IsZero() && until.IsZero():
		return " (all time)"
	case until.IsZero():
		return fmt.Sprintf(" (since %s)", since.Format("2006-01-02"))
	case since.IsZero():
		return fmt.Sprintf(" (until %s)", until.Format("2006-01-02"))
	default:
		return fmt.Sprintf(" (%s to %s)", since.Format("2006-01-02"), until.Format("2006-01-02"))
	}
}
