package core

import (
	"context"
	"fmt"
	"time"

	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// SocialInput parameterizes one run of the Fig. 7 workflow.
type SocialInput struct {
	// Application is the target application ("excavator", "car", ...);
	// empty matches all applications (block 1).
	Application string
	// Region restricts the query region; empty matches all regions.
	Region social.Region
	// Since/Until bound the sentiment time window — the parameter whose
	// effect Fig. 9-B vs 9-C demonstrates. Zero values are open ends.
	Since, Until time.Time
	// Threats is the manually identified threat scenario list from the
	// product security team (block 10). Scenarios without keywords are
	// skipped.
	Threats []*tara.ThreatScenario
	// DisableLearning turns off the auto-learning loop (ablation A3).
	DisableLearning bool
	// FilterInauthentic enables the poisoning defence from the paper's
	// roadmap: duplicate-text, author-burst and engagement-anomaly posts
	// are dropped before scoring.
	FilterInauthentic bool
}

// ThreatTuning is the per-threat output of the workflow: the updated
// weight table (block 12) with its provenance.
type ThreatTuning struct {
	// Threat is the tuned scenario.
	Threat *tara.ThreatScenario
	// Insider reports the social classification of the scenario's posts.
	Insider bool
	// Posts is the number of posts that informed the tuning.
	Posts int
	// VectorShares is the attraction share per vector.
	VectorShares map[tara.AttackVector]float64
	// Factors are the SAI corrective factors (share / uniform prior).
	Factors map[tara.AttackVector]float64
	// Table is the regenerated feasibility table. Outsider scenarios
	// keep the standard G.9 weights (Fig. 8-A); insider scenarios get
	// SAI-tuned weights (Fig. 8-B).
	Table *tara.VectorTable
}

// SocialResult is the output of the Fig. 7 workflow.
type SocialResult struct {
	// Index is the sorted Social Attraction Index (block 6).
	Index *sai.Index
	// Learned lists the keywords added by auto-learning (block 5),
	// attributed topic → tags.
	Learned map[string][]string
	// Keywords is the extended keyword database used by the run.
	Keywords *KeywordDB
	// OutsiderTable is the unmodified G.9 table applied to outsider
	// threats (Fig. 8-A).
	OutsiderTable *tara.VectorTable
	// Tunings carries the per-threat weight tables (Fig. 8-B, Fig. 9).
	Tunings []*ThreatTuning
	// InauthenticFiltered counts the posts dropped by the poisoning
	// defence across all queries of the run (0 when the filter is off).
	InauthenticFiltered int
	// Window echoes the analysis window for report provenance.
	Since, Until time.Time
}

// RunSocial executes the social workflow of Fig. 7.
func (f *Framework) RunSocial(ctx context.Context, in SocialInput) (*SocialResult, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: social workflow requires a configured Searcher")
	}
	db := f.keywords.Clone()
	var filtered int

	// Blocks 1–4: query every keyword group over the target inputs.
	groupPosts := make(map[string][]*social.Post, len(db.Groups()))
	for _, g := range db.Groups() {
		posts, err := f.queryTags(ctx, g.AllTags(), in, &filtered)
		if err != nil {
			return nil, fmt.Errorf("core: query topic %s: %w", g.Topic, err)
		}
		groupPosts[g.Topic] = posts
	}

	// Block 5: auto-learn new keywords from the matched corpus and
	// re-query the groups that gained tags.
	learned := map[string][]string{}
	if !in.DisableLearning && f.learnMax > 0 {
		learner := sai.NewLearner()
		for _, posts := range groupPosts {
			learner.Observe(posts)
		}
		candidates, err := learner.Learn(db.SeedTags(), f.learnMax)
		if err != nil {
			return nil, fmt.Errorf("core: keyword learning: %w", err)
		}
		attributed := learner.Attribute(candidates, db.SeedGroupMap())
		for topic, tags := range attributed {
			added, err := db.Extend(topic, tags)
			if err != nil {
				return nil, err
			}
			if len(added) == 0 {
				continue
			}
			learned[topic] = added
			posts, err := f.queryTags(ctx, db.Group(topic).AllTags(), in, &filtered)
			if err != nil {
				return nil, fmt.Errorf("core: re-query topic %s: %w", topic, err)
			}
			groupPosts[topic] = posts
		}
	}

	// Blocks 6–9: SAI computation with insider/outsider separation.
	groups := make([]sai.TopicPosts, 0, len(db.Groups()))
	for _, g := range db.Groups() {
		groups = append(groups, sai.TopicPosts{
			Topic: g.Topic,
			Tags:  g.AllTags(),
			Posts: groupPosts[g.Topic],
		})
	}
	index, err := f.builder.Build(groups)
	if err != nil {
		return nil, err
	}

	// Blocks 10–12: per-threat weight table generation.
	result := &SocialResult{
		Index:         index,
		Learned:       learned,
		Keywords:      db,
		OutsiderTable: tara.StandardVectorTable(),
		Since:         in.Since,
		Until:         in.Until,
	}
	for _, threat := range in.Threats {
		if threat == nil || len(threat.Keywords) == 0 {
			continue
		}
		tuning, err := f.tuneThreat(ctx, threat, in, &filtered)
		if err != nil {
			return nil, err
		}
		result.Tunings = append(result.Tunings, tuning)
	}
	result.InauthenticFiltered = filtered
	return result, nil
}

// tuneThreat queries a threat scenario's keyword posts and regenerates
// its feasibility table.
func (f *Framework) tuneThreat(ctx context.Context, threat *tara.ThreatScenario, in SocialInput, filtered *int) (*ThreatTuning, error) {
	posts, err := f.queryTags(ctx, threat.Keywords, in, filtered)
	if err != nil {
		return nil, fmt.Errorf("core: query threat %s: %w", threat.ID, err)
	}
	owners := sai.NewOwnerClassifier()
	tuning := &ThreatTuning{
		Threat:       threat,
		Posts:        len(posts),
		Insider:      len(posts) > 0 && owners.MajorityInsider(posts),
		VectorShares: f.builder.VectorShares(posts),
	}
	tuning.Factors = sai.CorrectiveFactors(tuning.VectorShares)
	if !tuning.Insider {
		// Retuning outsider entries "does not make sense": they keep the
		// standard weights.
		tuning.Table = tara.StandardVectorTable()
		return tuning, nil
	}
	name := fmt.Sprintf("PSP insider: %s%s", threat.Name, windowSuffix(in.Since, in.Until))
	table, err := sai.GenerateVectorTable(name, tuning.VectorShares, f.bands)
	if err != nil {
		return nil, fmt.Errorf("core: generate table for threat %s: %w", threat.ID, err)
	}
	tuning.Table = table
	return tuning, nil
}

// queryTags drains a paginated tag search with the workflow filters,
// applying the poisoning defence when the input enables it and adding
// the number of dropped posts to *filtered.
func (f *Framework) queryTags(ctx context.Context, tags []string, in SocialInput, filtered *int) ([]*social.Post, error) {
	if len(tags) == 0 {
		return nil, nil
	}
	q := social.Query{
		AnyTags: tags,
		Region:  in.Region,
		Since:   in.Since,
		Until:   in.Until,
	}
	if in.Application != "" {
		q.MustTerms = []string{in.Application}
	}
	posts, err := social.SearchAll(ctx, f.searcher, q)
	if err != nil {
		return nil, err
	}
	if !in.FilterInauthentic {
		return posts, nil
	}
	reportOut, err := sai.FilterAuthentic(posts, sai.DefaultAuthenticityConfig())
	if err != nil {
		return nil, err
	}
	if filtered != nil {
		*filtered += len(reportOut.Flagged)
	}
	return reportOut.Clean, nil
}

// TopicTrend computes the quarterly attraction trend of a tag set under
// the workflow filters — the "historical trend" search parameter of the
// paper. The poisoning defence applies when the input enables it.
func (f *Framework) TopicTrend(ctx context.Context, tags []string, in SocialInput) (*sai.Trend, error) {
	if f.searcher == nil {
		return nil, fmt.Errorf("core: trend analysis requires a configured Searcher")
	}
	if len(tags) == 0 {
		return nil, fmt.Errorf("core: trend analysis needs at least one tag")
	}
	posts, err := f.queryTags(ctx, tags, in, nil)
	if err != nil {
		return nil, err
	}
	return f.builder.ComputeTrend(posts)
}

// PersistLearned merges a run's learned keywords back into the
// framework's database, making them available to future runs (the
// paper's "future runs" loop).
func (f *Framework) PersistLearned(result *SocialResult) error {
	if result == nil {
		return fmt.Errorf("core: nil social result")
	}
	for topic, tags := range result.Learned {
		if _, err := f.keywords.Extend(topic, tags); err != nil {
			return err
		}
	}
	return nil
}

func windowSuffix(since, until time.Time) string {
	switch {
	case since.IsZero() && until.IsZero():
		return " (all time)"
	case until.IsZero():
		return fmt.Sprintf(" (since %s)", since.Format("2006-01-02"))
	case since.IsZero():
		return fmt.Sprintf(" (until %s)", until.Format("2006-01-02"))
	default:
		return fmt.Sprintf(" (%s to %s)", since.Format("2006-01-02"), until.Format("2006-01-02"))
	}
}
