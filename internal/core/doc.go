// Package core implements the PSP framework itself: the orchestration of
// the two workflows the paper defines.
//
// The social workflow (Fig. 7) takes a target application, region and
// time window, queries the social platform with the attack keyword
// database, auto-learns new keywords, computes the Social Attraction
// Index, classifies entries insider/outsider, and regenerates the
// ISO/SAE 21434 attack-vector feasibility tables with SAI-derived
// corrective factors for the insider threat scenarios supplied by the
// product security team. The platform queries — keyword groups,
// post-learning re-queries and per-threat tunings — fan out across a
// worker pool sized by Config.Concurrency (default GOMAXPROCS);
// results are assembled in input order, so output is identical at any
// concurrency and the sequential behaviour returns at Concurrency 1.
//
// The social workflow also has a delta-aware entry point,
// RunSocialDelta, backing the continuous monitoring subsystem
// (internal/monitor): platform queries are served through a ResultCache
// whose listings are invalidated by the exact query predicate as posts
// arrive, and every per-slice derivation — keyword-group co-occurrence
// graphs, SAI entries, threat tunings — is memoized against its
// listing's fill identity. A run after a small ingest delta recomputes
// only the slices the delta can affect yet produces a result identical
// to a cold RunSocial over the merged corpus.
//
// The financial workflow (Fig. 10) estimates the potential attacker
// population (PAE) from sales data and annual reports, mines marketplace
// listings for the purchase price per insider attack (PPIA) and the
// variable cost (VCU), computes the market value (MV), and derives the
// adversary investment bound (FC) through the break-even equations,
// mapping the result onto an ISO-21434 attack feasibility rating.
package core
