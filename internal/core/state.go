package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// The cache export/import surface: everything the continuous-monitoring
// daemon must persist to restart warm. A SocialResult round-trips
// through ResultState (a plain-JSON wire form — attack vectors and
// feasibility ratings travel by name, threat scenarios by ID), and the
// listing cache round-trips through FillStates that store post IDs
// only: the posts themselves are durable in the store, so a fill
// rehydrates by lookup instead of duplicating the corpus on disk.

// ResultState is the JSON-serializable form of a SocialResult.
type ResultState struct {
	Index               []EntryState        `json:"index"`
	Learned             map[string][]string `json:"learned,omitempty"`
	Keywords            []GroupState        `json:"keywords"`
	OutsiderTable       TableState          `json:"outsider_table"`
	Tunings             []TuningState       `json:"tunings"`
	InauthenticFiltered int                 `json:"inauthentic_filtered"`
	Since               time.Time           `json:"since,omitempty"`
	Until               time.Time           `json:"until,omitempty"`
}

// EntryState is one serialized SAI index row.
type EntryState struct {
	Topic        string             `json:"topic"`
	Tags         []string           `json:"tags"`
	Posts        int                `json:"posts"`
	Score        float64            `json:"score"`
	Probability  float64            `json:"probability"`
	Insider      bool               `json:"insider"`
	VectorShares map[string]float64 `json:"vector_shares,omitempty"`
}

// GroupState is one serialized keyword group (seed and learned tags
// kept apart so a restore rebuilds the same provenance).
type GroupState struct {
	Topic   string   `json:"topic"`
	Tags    []string `json:"tags"`
	Learned []string `json:"learned,omitempty"`
}

// TableState is a serialized feasibility table: vector name → rating
// name.
type TableState struct {
	Name    string            `json:"name"`
	Ratings map[string]string `json:"ratings"`
}

// TuningState is one serialized per-threat tuning. The scenario itself
// travels by ID: a restore resolves it against the monitored input's
// live scenario list, so a changed threat configuration invalidates the
// persisted state instead of silently resurrecting a stale scenario.
type TuningState struct {
	ThreatID     string             `json:"threat_id"`
	Insider      bool               `json:"insider"`
	Posts        int                `json:"posts"`
	VectorShares map[string]float64 `json:"vector_shares,omitempty"`
	Factors      map[string]float64 `json:"factors,omitempty"`
	Table        TableState         `json:"table"`
}

// exportShares renders a vector-keyed map by vector name.
func exportShares(shares map[tara.AttackVector]float64) map[string]float64 {
	if len(shares) == 0 {
		return nil
	}
	out := make(map[string]float64, len(shares))
	for v, f := range shares {
		out[v.String()] = f
	}
	return out
}

func restoreShares(shares map[string]float64) (map[tara.AttackVector]float64, error) {
	if len(shares) == 0 {
		return nil, nil
	}
	out := make(map[tara.AttackVector]float64, len(shares))
	for name, f := range shares {
		v, err := tara.ParseVector(name)
		if err != nil {
			return nil, err
		}
		out[v] = f
	}
	return out, nil
}

func exportTable(t *tara.VectorTable) TableState {
	st := TableState{Name: t.Name, Ratings: make(map[string]string, 4)}
	for v, r := range t.Ratings() {
		st.Ratings[v.String()] = r.String()
	}
	return st
}

func restoreTable(st TableState) (*tara.VectorTable, error) {
	ratings := make(map[tara.AttackVector]tara.FeasibilityRating, len(st.Ratings))
	for vn, rn := range st.Ratings {
		v, err := tara.ParseVector(vn)
		if err != nil {
			return nil, err
		}
		r, err := tara.ParseFeasibility(rn)
		if err != nil {
			return nil, err
		}
		ratings[v] = r
	}
	return tara.NewVectorTable(st.Name, ratings)
}

// ExportResult serializes a workflow result for persistence.
func ExportResult(r *SocialResult) (*ResultState, error) {
	if r == nil || r.Index == nil || r.Keywords == nil || r.OutsiderTable == nil {
		return nil, fmt.Errorf("core: incomplete social result")
	}
	st := &ResultState{
		Learned:             r.Learned,
		OutsiderTable:       exportTable(r.OutsiderTable),
		InauthenticFiltered: r.InauthenticFiltered,
		Since:               r.Since,
		Until:               r.Until,
	}
	for _, e := range r.Index.Entries {
		st.Index = append(st.Index, EntryState{
			Topic:        e.Topic,
			Tags:         e.Tags,
			Posts:        e.Posts,
			Score:        e.Score,
			Probability:  e.Probability,
			Insider:      e.Insider,
			VectorShares: exportShares(e.VectorShares),
		})
	}
	for _, g := range r.Keywords.Groups() {
		st.Keywords = append(st.Keywords, GroupState{Topic: g.Topic, Tags: g.Tags, Learned: g.Learned})
	}
	for _, tuning := range r.Tunings {
		st.Tunings = append(st.Tunings, TuningState{
			ThreatID:     tuning.Threat.ID,
			Insider:      tuning.Insider,
			Posts:        tuning.Posts,
			VectorShares: exportShares(tuning.VectorShares),
			Factors:      exportShares(tuning.Factors),
			Table:        exportTable(tuning.Table),
		})
	}
	return st, nil
}

// RestoreResult rebuilds a SocialResult from its serialized form,
// resolving threat scenarios by ID against the monitored input's live
// list. A scenario the state references but the input no longer carries
// is an error — the caller treats it as "state stale, run cold".
func RestoreResult(st *ResultState, threats []*tara.ThreatScenario) (*SocialResult, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil result state")
	}
	byID := make(map[string]*tara.ThreatScenario, len(threats))
	for _, threat := range threats {
		if threat != nil {
			byID[threat.ID] = threat
		}
	}
	var groups []KeywordGroup
	for _, g := range st.Keywords {
		groups = append(groups, KeywordGroup{Topic: g.Topic, Tags: g.Tags})
	}
	db, err := NewKeywordDB(groups)
	if err != nil {
		return nil, fmt.Errorf("core: restore keywords: %w", err)
	}
	for _, g := range st.Keywords {
		if len(g.Learned) == 0 {
			continue
		}
		if _, err := db.Extend(g.Topic, g.Learned); err != nil {
			return nil, fmt.Errorf("core: restore learned tags: %w", err)
		}
	}
	outsider, err := restoreTable(st.OutsiderTable)
	if err != nil {
		return nil, fmt.Errorf("core: restore outsider table: %w", err)
	}
	res := &SocialResult{
		Index:               &sai.Index{},
		Learned:             st.Learned,
		Keywords:            db,
		OutsiderTable:       outsider,
		InauthenticFiltered: st.InauthenticFiltered,
		Since:               st.Since,
		Until:               st.Until,
	}
	for _, e := range st.Index {
		shares, err := restoreShares(e.VectorShares)
		if err != nil {
			return nil, fmt.Errorf("core: restore index entry %s: %w", e.Topic, err)
		}
		res.Index.Entries = append(res.Index.Entries, sai.Entry{
			Topic:        e.Topic,
			Tags:         e.Tags,
			Posts:        e.Posts,
			Score:        e.Score,
			Probability:  e.Probability,
			Insider:      e.Insider,
			VectorShares: shares,
		})
	}
	for _, ts := range st.Tunings {
		threat := byID[ts.ThreatID]
		if threat == nil {
			return nil, fmt.Errorf("core: persisted tuning references unknown threat %s", ts.ThreatID)
		}
		shares, err := restoreShares(ts.VectorShares)
		if err != nil {
			return nil, fmt.Errorf("core: restore tuning %s: %w", ts.ThreatID, err)
		}
		factors, err := restoreShares(ts.Factors)
		if err != nil {
			return nil, fmt.Errorf("core: restore tuning %s: %w", ts.ThreatID, err)
		}
		table, err := restoreTable(ts.Table)
		if err != nil {
			return nil, fmt.Errorf("core: restore tuning %s: %w", ts.ThreatID, err)
		}
		res.Tunings = append(res.Tunings, &ThreatTuning{
			Threat:       threat,
			Insider:      ts.Insider,
			Posts:        ts.Posts,
			VectorShares: shares,
			Factors:      factors,
			Table:        table,
		})
	}
	return res, nil
}

// FillState is one serialized listing-cache entry: the canonical query
// plus its result's post IDs in listing order. Posts rehydrate from the
// durable store by ID.
type FillState struct {
	Query   social.Query `json:"query"`
	PostIDs []string     `json:"post_ids"`
}

// ExportFills serializes the listing cache, sorted by cache key so the
// persisted state is deterministic.
func (rc *ResultCache) ExportFills() []FillState {
	c := rc.qc
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.fills))
	for key := range c.fills {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]FillState, 0, len(keys))
	for _, key := range keys {
		fill := c.fills[key]
		ids := make([]string, len(fill.posts))
		for i, p := range fill.posts {
			ids[i] = p.ID
		}
		out = append(out, FillState{Query: fill.query, PostIDs: ids})
	}
	return out
}

// ImportFills rehydrates persisted listings into the cache, resolving
// post IDs through lookup (typically Store.Post over the recovered
// durable store). A fill with any unresolvable post is dropped — the
// next run re-drains that one query — and the count of fills actually
// restored is returned. Must not run concurrently with workflow runs,
// like Invalidate.
func (rc *ResultCache) ImportFills(fills []FillState, lookup func(id string) *social.Post) int {
	c := rc.qc
	c.mu.Lock()
	defer c.mu.Unlock()
	restored := 0
	for _, fs := range fills {
		canon := fs.Query.Canonical()
		posts := make([]*social.Post, 0, len(fs.PostIDs))
		ok := true
		for _, id := range fs.PostIDs {
			p := lookup(id)
			if p == nil {
				ok = false
				break
			}
			posts = append(posts, p)
		}
		if !ok {
			continue
		}
		c.fills[cacheKey(canon)] = &cacheFill{query: canon, matcher: canon.Matcher(), posts: posts}
		restored++
	}
	return restored
}
