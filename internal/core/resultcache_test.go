package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

func deltaPost(i int, text string) *social.Post {
	return &social.Post{
		ID:        fmt.Sprintf("delta-%03d", i),
		Author:    fmt.Sprintf("newuser%d", i),
		Text:      text,
		CreatedAt: time.Date(2023, 3, 1, 12, i%60, i/60, 0, time.UTC),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: 120 + i, Likes: 10},
	}
}

func TestQueryCacheServesIdenticalListings(t *testing.T) {
	store, err := social.DefaultStore(7)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingSearcher{inner: store}
	cache := NewQueryCache(counting)
	q := social.Query{AnyTags: []string{"dpfdelete", "chiptuning"}, MaxResults: 50}

	direct, err := social.SearchAll(context.Background(), store, q)
	if err != nil {
		t.Fatal(err)
	}
	viaCache, err := social.SearchAll(context.Background(), cache, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids(direct), ids(viaCache)) {
		t.Fatal("cached listing differs from direct drain")
	}
	warm := counting.calls.Load()
	if _, err := social.SearchAll(context.Background(), cache, q); err != nil {
		t.Fatal(err)
	}
	// A differently ordered, differently paged spelling of the same
	// query hits the same cache entry.
	if _, err := cache.Search(context.Background(), social.Query{AnyTags: []string{"#ChipTuning", "dpfdelete"}, MaxResults: 10}); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != warm {
		t.Errorf("cache hit reached the backend: %d calls, want %d", counting.calls.Load(), warm)
	}
}

func TestQueryCacheInvalidationIsExact(t *testing.T) {
	store := social.NewStore()
	if err := store.Add(
		&social.Post{ID: "a", Author: "u", Text: "#dpfdelete on the excavator", CreatedAt: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), Region: social.RegionEurope, Metrics: social.Metrics{Views: 1}},
		&social.Post{ID: "b", Author: "u", Text: "#chiptuning the car", CreatedAt: time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC), Region: social.RegionEurope, Metrics: social.Metrics{Views: 1}},
	); err != nil {
		t.Fatal(err)
	}
	cache := NewQueryCache(store)
	ctx := context.Background()
	for _, tags := range [][]string{{"dpfdelete"}, {"chiptuning"}} {
		if _, err := cache.Search(ctx, social.Query{AnyTags: tags}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d listings, want 2", cache.Len())
	}

	// A post that matches neither query leaves both listings valid.
	neutral := deltaPost(0, "#egrremoval chatter")
	if n := cache.Invalidate(neutral); n != 0 || cache.Len() != 2 {
		t.Errorf("neutral post dropped %d listings (len %d)", n, cache.Len())
	}
	// A dpfdelete post drops exactly the dpfdelete listing.
	hit := deltaPost(1, "new #dpfdelete kit")
	if n := cache.Invalidate(hit); n != 1 || cache.Len() != 1 {
		t.Errorf("matching post dropped %d listings (len %d), want 1 (len 1)", n, cache.Len())
	}
	// The refreshed listing includes the new post once re-added.
	if err := store.Add(hit); err != nil {
		t.Fatal(err)
	}
	page, err := cache.Search(ctx, social.Query{AnyTags: []string{"dpfdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if page.TotalMatches != 2 {
		t.Errorf("refreshed listing has %d matches, want 2", page.TotalMatches)
	}
}

// TestRunSocialDeltaMatchesColdRun is the core equivalence guarantee:
// after ingesting a delta and invalidating, the incremental run equals
// a cold RunSocial over the merged corpus — reflect.DeepEqual over the
// whole SocialResult, including the float-valued index and tunings.
func TestRunSocialDeltaMatchesColdRun(t *testing.T) {
	store, err := social.DefaultStore(99)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	threats := []*tara.ThreatScenario{ecmThreat()}
	in := SocialInput{Threats: threats}
	ctx := context.Background()
	rc := NewResultCache(store)

	warm, err := fw.RunSocialDelta(ctx, in, rc)
	if err != nil {
		t.Fatal(err)
	}
	coldBefore, err := fw.RunSocial(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, coldBefore) {
		t.Fatal("initial delta run differs from cold run over the same corpus")
	}

	// Ingest a delta touching one topic and the ECM threat, plus noise.
	var delta []*social.Post
	for i := 10; i < 40; i++ {
		text := "fresh #chiptuning remap results"
		if i%3 == 0 {
			text = "unrelated #fillerchatter noise"
		}
		delta = append(delta, deltaPost(i, text))
	}
	if err := store.Add(delta...); err != nil {
		t.Fatal(err)
	}
	if n := rc.Invalidate(delta...); n == 0 {
		t.Fatal("delta invalidated nothing; test is vacuous")
	}

	incremental, err := fw.RunSocialDelta(ctx, in, rc)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := fw.RunSocial(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incremental, cold) {
		t.Errorf("incremental result diverged from cold run\nincremental index: %+v\ncold index: %+v",
			incremental.Index.Entries, cold.Index.Entries)
	}
	// The delta must actually have moved the result (non-vacuous).
	if reflect.DeepEqual(incremental.Index, coldBefore.Index) {
		t.Error("delta did not change the index; equivalence test is vacuous")
	}
}

// TestRunSocialDeltaSkipsFreshSlices pins the incremental cost model:
// once warm, a run after an irrelevant delta touches the backend zero
// times, and a single-topic delta re-drains only the affected listings.
func TestRunSocialDeltaSkipsFreshSlices(t *testing.T) {
	store, err := social.DefaultStore(5)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingSearcher{inner: store}
	fw, err := New(Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	threats := []*tara.ThreatScenario{ecmThreat()}
	in := SocialInput{Threats: threats}
	ctx := context.Background()
	rc := NewResultCache(counting)

	if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
		t.Fatal(err)
	}
	warm := counting.calls.Load()

	// No invalidation → no backend traffic at all.
	if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != warm {
		t.Errorf("fresh rerun reached the backend %d times", counting.calls.Load()-warm)
	}

	// An irrelevant post invalidates nothing.
	noise := deltaPost(50, "plain #fillerchatter noise")
	if err := store.Add(noise); err != nil {
		t.Fatal(err)
	}
	if n := rc.Invalidate(noise); n != 0 {
		t.Errorf("irrelevant post dropped %d listings", n)
	}
	if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != warm {
		t.Errorf("irrelevant delta reached the backend %d times", counting.calls.Load()-warm)
	}

	// A single-topic delta re-drains only the affected listings, not
	// every keyword group.
	hit := deltaPost(51, "new #gpsblocker sleeve install")
	if err := store.Add(hit); err != nil {
		t.Fatal(err)
	}
	dropped := rc.Invalidate(hit)
	if dropped == 0 {
		t.Fatal("topical post invalidated nothing")
	}
	if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
		t.Fatal(err)
	}
	redrains := counting.calls.Load() - warm
	groups := len(fw.Keywords().Groups())
	if redrains == 0 || redrains >= warm {
		t.Errorf("single-topic delta triggered %d backend calls (warm run took %d, %d groups)",
			redrains, warm, groups)
	}
}

func ids(posts []*social.Post) []string {
	out := make([]string, len(posts))
	for i, p := range posts {
		out[i] = p.ID
	}
	return out
}
