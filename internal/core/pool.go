package core

import (
	"context"
	"sync"
)

// forEachLimited runs fn for every index in [0, n) on at most limit
// concurrent goroutines. The first error cancels the context shared by
// all invocations and is returned once in-flight work has drained;
// pending indices are not started. Cancellation of the parent context
// aborts the fan-out the same way and surfaces ctx.Err(). Callers keep
// deterministic output ordering by writing results into slot i.
func forEachLimited(ctx context.Context, limit, n int, fn func(ctx context.Context, i int) error) error {
	if limit < 1 {
		limit = 1
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	sem := make(chan struct{}, limit)
dispatch:
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
		case <-gctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if gctx.Err() != nil {
				return
			}
			if err := fn(gctx, i); err != nil {
				setErr(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
