package core

import (
	"sort"

	"github.com/psp-framework/psp/internal/social"
)

// DirtySet names the workflow slices a batch of newly ingested posts
// can affect: the keyword-group topics and threat scenarios whose
// platform queries would match at least one of the posts. The monitor
// surfaces it as freshness metadata; correctness of incremental
// re-assessment rests on the result cache's own invalidation, not on
// this summary.
type DirtySet struct {
	// Topics are the affected keyword-group topics, sorted.
	Topics []string `json:"topics,omitempty"`
	// Threats are the affected threat scenario IDs, sorted.
	Threats []string `json:"threats,omitempty"`
	// Posts is the number of posts examined.
	Posts int `json:"posts"`
}

// Empty reports whether the delta touches no workflow slice.
func (d DirtySet) Empty() bool { return len(d.Topics) == 0 && len(d.Threats) == 0 }

// DirtyForPosts classifies a batch of new posts against the framework's
// keyword database (seed and learned tags) and the input's threat
// scenarios, using the exact query predicate of the social substrate.
func (f *Framework) DirtyForPosts(in SocialInput, posts []*social.Post) DirtySet {
	return f.DirtyForProfiles(in, social.ProfilePosts(posts))
}

// DirtyForProfiles is DirtyForPosts over pre-tokenized posts.
func (f *Framework) DirtyForProfiles(in SocialInput, profiles []*social.PostProfile) DirtySet {
	d := DirtySet{Posts: len(profiles)}
	if len(profiles) == 0 {
		return d
	}
	anyMatch := func(tags []string) bool {
		m := tagQuery(tags, in).Matcher()
		for _, pp := range profiles {
			if m.Matches(pp) {
				return true
			}
		}
		return false
	}
	for _, g := range f.keywords.Groups() {
		if anyMatch(g.AllTags()) {
			d.Topics = append(d.Topics, g.Topic)
		}
	}
	for _, threat := range in.Threats {
		if threat == nil || len(threat.Keywords) == 0 {
			continue
		}
		if anyMatch(threat.Keywords) {
			d.Threats = append(d.Threats, threat.ID)
		}
	}
	sort.Strings(d.Topics)
	sort.Strings(d.Threats)
	return d
}
