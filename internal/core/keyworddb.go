package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/psp-framework/psp/internal/nlp"
)

// KeywordGroup is one attack topic with its known hashtags.
type KeywordGroup struct {
	// Topic is the display name ("DPF delete").
	Topic string
	// Tags are the known hashtags (normalized, no '#').
	Tags []string
	// Learned marks tags added by the auto-learning loop, parallel to a
	// suffix of Tags.
	Learned []string
}

// AllTags returns seed and learned tags combined.
func (g *KeywordGroup) AllTags() []string {
	out := make([]string, 0, len(g.Tags)+len(g.Learned))
	out = append(out, g.Tags...)
	out = append(out, g.Learned...)
	return out
}

// KeywordDB is the attack keyword database of Fig. 7 blocks 3–4:
// manually seeded on the first run, extended by auto-learning afterward.
type KeywordDB struct {
	groups []*KeywordGroup
	byTag  map[string]string // tag → topic
}

// NewKeywordDB builds a database from groups, normalizing tags and
// rejecting duplicates across groups.
func NewKeywordDB(groups []KeywordGroup) (*KeywordDB, error) {
	db := &KeywordDB{byTag: make(map[string]string)}
	for _, g := range groups {
		if strings.TrimSpace(g.Topic) == "" {
			return nil, fmt.Errorf("core: keyword group with empty topic")
		}
		if len(g.Tags) == 0 {
			return nil, fmt.Errorf("core: keyword group %s has no tags", g.Topic)
		}
		cp := &KeywordGroup{Topic: g.Topic}
		for _, tag := range g.Tags {
			tag = nlp.Normalize(strings.TrimPrefix(tag, "#"))
			if tag == "" {
				return nil, fmt.Errorf("core: keyword group %s has an empty tag", g.Topic)
			}
			if owner, dup := db.byTag[tag]; dup {
				return nil, fmt.Errorf("core: tag %q in both %s and %s", tag, owner, g.Topic)
			}
			db.byTag[tag] = g.Topic
			cp.Tags = append(cp.Tags, tag)
		}
		db.groups = append(db.groups, cp)
	}
	if len(db.groups) == 0 {
		return nil, fmt.Errorf("core: empty keyword database")
	}
	return db, nil
}

// Groups returns the groups in registration order.
func (db *KeywordDB) Groups() []*KeywordGroup { return db.groups }

// Group returns the group for a topic, or nil.
func (db *KeywordDB) Group(topic string) *KeywordGroup {
	for _, g := range db.groups {
		if g.Topic == topic {
			return g
		}
	}
	return nil
}

// SeedTags returns every tag across groups (seeds plus learned), sorted.
func (db *KeywordDB) SeedTags() []string {
	var out []string
	for _, g := range db.groups {
		out = append(out, g.AllTags()...)
	}
	sort.Strings(out)
	return out
}

// Extend adds learned tags to a topic's group, skipping tags already
// known anywhere in the database. It returns the tags actually added.
func (db *KeywordDB) Extend(topic string, tags []string) ([]string, error) {
	g := db.Group(topic)
	if g == nil {
		return nil, fmt.Errorf("core: unknown keyword topic %q", topic)
	}
	var added []string
	for _, tag := range tags {
		tag = nlp.Normalize(strings.TrimPrefix(tag, "#"))
		if tag == "" {
			continue
		}
		if _, known := db.byTag[tag]; known {
			continue
		}
		db.byTag[tag] = topic
		g.Learned = append(g.Learned, tag)
		added = append(added, tag)
	}
	return added, nil
}

// SeedGroupMap returns topic → seed tags, the shape the learner's
// attribution step consumes.
func (db *KeywordDB) SeedGroupMap() map[string][]string {
	out := make(map[string][]string, len(db.groups))
	for _, g := range db.groups {
		out[g.Topic] = append([]string(nil), g.Tags...)
	}
	return out
}

// Clone deep-copies the database so a workflow run can extend its own
// copy without mutating the caller's.
func (db *KeywordDB) Clone() *KeywordDB {
	cp := &KeywordDB{byTag: make(map[string]string, len(db.byTag))}
	for tag, topic := range db.byTag {
		cp.byTag[tag] = topic
	}
	for _, g := range db.groups {
		cp.groups = append(cp.groups, &KeywordGroup{
			Topic:   g.Topic,
			Tags:    append([]string(nil), g.Tags...),
			Learned: append([]string(nil), g.Learned...),
		})
	}
	return cp
}

// DefaultKeywordDB returns the built-in database. Seeds follow the
// paper's manual first-iteration list (#dpfdelete, #egrremoval,
// #egrdelete, #egroff, #dieselpower, #chiptuning) plus the topic anchors
// needed to cover the excavator case study; variants like #dpfoff or
// #remap are deliberately absent so the auto-learning loop has work to
// do (ablation A3 measures exactly that gap).
func DefaultKeywordDB() (*KeywordDB, error) {
	return NewKeywordDB([]KeywordGroup{
		{Topic: "DPF delete", Tags: []string{"dpfdelete", "dieselpower"}},
		{Topic: "EGR removal", Tags: []string{"egrremoval", "egrdelete", "egroff"}},
		{Topic: "ECM reprogramming", Tags: []string{"chiptuning"}},
		{Topic: "AdBlue emulation", Tags: []string{"adblueoff"}},
		{Topic: "Excavator tuning", Tags: []string{"excavatortuning"}},
		{Topic: "Speed limiter removal", Tags: []string{"speedlimiteroff"}},
		{Topic: "Immobilizer bypass", Tags: []string{"keyfobhack", "relayattack"}},
		{Topic: "GPS tracker defeat", Tags: []string{"gpsblocker"}},
	})
}
