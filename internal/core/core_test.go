package core

import (
	"context"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// newTestFramework wires a framework over the reference corpus and the
// calibrated market dataset.
func newTestFramework(t *testing.T) *Framework {
	t.Helper()
	store, err := social.DefaultStore(1234)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store, Market: ds})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// ecmThreat returns the paper's running threat scenario.
func ecmThreat() *tara.ThreatScenario {
	return &tara.ThreatScenario{
		ID: "TS-ECM-01", Name: "ECM reprogramming",
		Description: "Owner-approved reflash of ECM calibration",
		DamageIDs:   []string{"DS-01"},
		Property:    tara.PropertyIntegrity,
		STRIDE:      tara.Tampering,
		Profiles:    []tara.AttackerProfile{tara.ProfileInsider, tara.ProfileRational, tara.ProfileLocal},
		Vector:      tara.VectorPhysical,
		Keywords:    []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

func TestRunSocialECMAllTime(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Threats: []*tara.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tunings) != 1 {
		t.Fatalf("tunings = %d, want 1", len(res.Tunings))
	}
	tuning := res.Tunings[0]
	if !tuning.Insider {
		t.Fatal("ECM reprogramming classified outsider")
	}
	if tuning.Posts < 1000 {
		t.Errorf("tuning informed by only %d posts", tuning.Posts)
	}
	// Fig. 9-B: all-time window puts Physical on top (High) and demotes
	// Network to Very Low — the inversion of G.9.
	expect := map[tara.AttackVector]tara.FeasibilityRating{
		tara.VectorPhysical: tara.FeasibilityHigh,
		tara.VectorLocal:    tara.FeasibilityMedium,
		tara.VectorAdjacent: tara.FeasibilityLow,
		tara.VectorNetwork:  tara.FeasibilityVeryLow,
	}
	for v, want := range expect {
		got, err := tuning.Table.Rating(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("all-time rating(%s) = %v, want %v (shares %v)", v, got, want, tuning.VectorShares)
		}
	}
	// The corrective factor for physical must exceed 1 (more activity
	// than the uniform prior), network must sit below 1.
	if tuning.Factors[tara.VectorPhysical] <= 1 {
		t.Errorf("physical corrective factor = %.2f, want > 1", tuning.Factors[tara.VectorPhysical])
	}
	if tuning.Factors[tara.VectorNetwork] >= 1 {
		t.Errorf("network corrective factor = %.2f, want < 1", tuning.Factors[tara.VectorNetwork])
	}
	// The outsider table stays the standard G.9.
	if !res.OutsiderTable.Equal(tara.StandardVectorTable()) {
		t.Error("outsider table deviates from G.9")
	}
}

func TestRunSocialECMSince2022TrendInversion(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Since:   time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Threats: []*tara.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		t.Fatal(err)
	}
	tuning := res.Tunings[0]
	// Fig. 9-C: restricting the window from 2022 flips the top vector to
	// Local — "reprogramming via a physical attack is no longer
	// mainstream, and attackers are more likely to opt for a local
	// attack via OBD".
	local, err := tuning.Table.Rating(tara.VectorLocal)
	if err != nil {
		t.Fatal(err)
	}
	if local != tara.FeasibilityHigh {
		t.Errorf("since-2022 rating(Local) = %v, want High (shares %v)", local, tuning.VectorShares)
	}
	phys, err := tuning.Table.Rating(tara.VectorPhysical)
	if err != nil {
		t.Fatal(err)
	}
	if phys >= tara.FeasibilityHigh {
		t.Errorf("since-2022 rating(Physical) = %v, want demoted below High", phys)
	}
	if tuning.VectorShares[tara.VectorLocal] <= tuning.VectorShares[tara.VectorPhysical] {
		t.Errorf("since-2022 local share %.3f not above physical %.3f",
			tuning.VectorShares[tara.VectorLocal], tuning.VectorShares[tara.VectorPhysical])
	}
}

func TestRunSocialExcavatorSAIRanking(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Application: "excavator",
		Region:      social.RegionEurope,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := res.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 12: DPF delete is the top insider attack for excavators.
	if top.Topic != "DPF delete" {
		t.Errorf("top SAI entry = %s, want DPF delete", top.Topic)
	}
	if !top.Insider {
		t.Error("DPF delete classified outsider")
	}
	if top.Probability <= 0.2 {
		t.Errorf("top probability = %.3f, want dominant share", top.Probability)
	}
	// Theft topics must classify outsider.
	for _, e := range res.Index.Entries {
		switch e.Topic {
		case "Immobilizer bypass", "GPS tracker defeat":
			if e.Insider && e.Posts > 0 {
				t.Errorf("theft topic %s classified insider (%d posts)", e.Topic, e.Posts)
			}
		}
	}
	// Insider entries keep the full ranking minus theft topics.
	if len(res.Index.Insiders()) < 4 {
		t.Errorf("insider entries = %d, want ≥ 4", len(res.Index.Insiders()))
	}
}

func TestRunSocialKeywordLearning(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunSocial(context.Background(), SocialInput{})
	if err != nil {
		t.Fatal(err)
	}
	// The corpus carries #dpfoff / #dpfremoval alongside #dpfdelete, and
	// the DB deliberately omits them: learning must find at least one.
	dpf := res.Learned["DPF delete"]
	if len(dpf) == 0 {
		t.Fatalf("no keywords learned for DPF delete: %v", res.Learned)
	}
	found := false
	for _, tag := range dpf {
		if tag == "dpfoff" || tag == "dpfremoval" {
			found = true
		}
	}
	if !found {
		t.Errorf("learned DPF tags = %v, want dpfoff or dpfremoval", dpf)
	}
	// Learning must widen coverage versus a learning-disabled run.
	resOff, err := fw.RunSocial(context.Background(), SocialInput{DisableLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	postsOn := topicPosts(res, "DPF delete")
	postsOff := topicPosts(resOff, "DPF delete")
	if postsOn <= postsOff {
		t.Errorf("learning did not widen coverage: %d vs %d posts", postsOn, postsOff)
	}
	// PersistLearned merges into the framework DB.
	before := len(fw.Keywords().Group("DPF delete").AllTags())
	if err := fw.PersistLearned(res); err != nil {
		t.Fatal(err)
	}
	after := len(fw.Keywords().Group("DPF delete").AllTags())
	if after <= before {
		t.Error("PersistLearned did not extend the framework database")
	}
}

func topicPosts(res *SocialResult, topic string) int {
	for _, e := range res.Index.Entries {
		if e.Topic == topic {
			return e.Posts
		}
	}
	return -1
}

func TestRunSocialRequiresSearcher(t *testing.T) {
	fw, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunSocial(context.Background(), SocialInput{}); err == nil {
		t.Error("social workflow without searcher succeeded")
	}
}

func TestRunFinancialExcavatorCaseStudy(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunFinancial(FinancialInput{
		Category:    market.CategoryDPFTampering,
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  finance.NonMonopolistic,
		Maker:       market.MajorExcavatorMaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 6: PAE = 28,120 × 0.05 = 1,406; MV = 1,406 × 360 =
	// 506,160 EUR.
	if res.UnitsBasis != 28120 || res.PEA != 0.05 || res.PAE != 1406 {
		t.Errorf("PAE chain = %d units × %.2f → %d, want 28120 × 0.05 → 1406",
			res.UnitsBasis, res.PEA, res.PAE)
	}
	if res.PPIA.Units() != 360 {
		t.Errorf("PPIA = %s, want 360.00 EUR", res.PPIA)
	}
	if res.MV.Units() != 506160 {
		t.Errorf("MV = %s, want 506,160.00 EUR (Eq. 6)", res.MV)
	}
	// Equation 7: FC = 1,406 × 310 / 3 ≈ 145,286.67 EUR.
	if res.VCU.Units() != 50 {
		t.Errorf("VCU = %s, want 50.00 EUR", res.VCU)
	}
	if res.N != 3 {
		t.Errorf("N = %d, want 3", res.N)
	}
	if res.SecurityBudget.Cents != 14528667 {
		t.Errorf("security budget = %s, want ≈145,286.67 EUR (Eq. 7)", res.SecurityBudget)
	}
	// The default adversary profile lands close to the budget, so the
	// demand ratio sits near 1: a profitable, Medium-rated attack.
	if res.Rating != tara.FeasibilityMedium {
		t.Errorf("financial rating = %v, want Medium (PAE %d vs BEP %d)", res.Rating, res.PAE, res.BEP)
	}
	if res.Curve == nil || res.Curve.BreakEvenUnits != res.BEP {
		t.Error("BEP curve missing or inconsistent")
	}
	if res.Survey.CompetitorCount() != 3 {
		t.Errorf("survey competitors = %d, want 3", res.Survey.CompetitorCount())
	}
}

func TestRunFinancialMonopolisticUsesVS(t *testing.T) {
	fw := newTestFramework(t)
	res, err := fw.RunFinancial(FinancialInput{
		Category:    market.CategoryDPFTampering,
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  finance.Monopolistic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnitsBasis != 84300 {
		t.Errorf("monopolistic units = %d, want VS 84300", res.UnitsBasis)
	}
	if res.PAE != 4215 {
		t.Errorf("monopolistic PAE = %d, want 4215", res.PAE)
	}
}

func TestRunFinancialValidation(t *testing.T) {
	fw := newTestFramework(t)
	cases := []FinancialInput{
		{},
		{Category: "x", Application: "excavator", Region: "EU", Year: 2022,
			MarketKind: finance.NonMonopolistic}, // missing maker
		{Category: market.CategoryDPFTampering, Application: "excavator", Region: "EU",
			Year: 2022, MarketKind: 0},
		{Category: "unknown-cat", Application: "excavator", Region: "EU", Year: 2022,
			MarketKind: finance.Monopolistic},
	}
	for i, in := range cases {
		if _, err := fw.RunFinancial(in); err == nil {
			t.Errorf("case %d: invalid input accepted: %+v", i, in)
		}
	}
	// No market dataset configured.
	bare, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.RunFinancial(FinancialInput{
		Category: "x", Application: "y", Region: "EU", Year: 2022,
		MarketKind: finance.Monopolistic,
	}); err == nil {
		t.Error("financial workflow without market dataset succeeded")
	}
}

func TestKeywordDB(t *testing.T) {
	db, err := DefaultKeywordDB()
	if err != nil {
		t.Fatal(err)
	}
	if db.Group("DPF delete") == nil {
		t.Fatal("missing DPF delete group")
	}
	// Paper seeds must be present across the DB.
	tags := map[string]bool{}
	for _, tag := range db.SeedTags() {
		tags[tag] = true
	}
	for _, seed := range social.SeedKeywords() {
		if !tags[seed] {
			t.Errorf("paper seed %q missing from default DB", seed)
		}
	}
	// Extend adds only unknown tags.
	added, err := db.Extend("DPF delete", []string{"dpfoff", "dpfdelete", "#DPFOFF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != "dpfoff" {
		t.Errorf("Extend added %v, want [dpfoff]", added)
	}
	if _, err := db.Extend("No such topic", []string{"x"}); err == nil {
		t.Error("extend unknown topic succeeded")
	}
	// Clone isolation.
	clone := db.Clone()
	if _, err := clone.Extend("DPF delete", []string{"newtag"}); err != nil {
		t.Fatal(err)
	}
	for _, tag := range db.Group("DPF delete").AllTags() {
		if tag == "newtag" {
			t.Error("clone mutation leaked into original")
		}
	}
	// Validation.
	if _, err := NewKeywordDB(nil); err == nil {
		t.Error("empty DB accepted")
	}
	if _, err := NewKeywordDB([]KeywordGroup{{Topic: "", Tags: []string{"a"}}}); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := NewKeywordDB([]KeywordGroup{
		{Topic: "A", Tags: []string{"x"}},
		{Topic: "B", Tags: []string{"x"}},
	}); err == nil {
		t.Error("duplicate tag across groups accepted")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{PriceClusters: -1}); err == nil {
		t.Error("negative price clusters accepted")
	}
	if _, err := New(Config{Weights: sai.Weights{Views: -1, Interactions: 1}}); err == nil {
		t.Error("invalid weights accepted")
	}
}

func TestTopicTrend(t *testing.T) {
	fw := newTestFramework(t)
	// Bound the window to full years: partial final-year quarters would
	// bias the fit downward.
	trend, err := fw.TopicTrend(context.Background(),
		[]string{"chiptuning", "ecutune", "remap", "stage1"}, SocialInput{
			Until: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.Points) < 10 {
		t.Errorf("trend has only %d quarterly points", len(trend.Points))
	}
	// The ECM topic volume grows over the corpus years.
	if trend.Direction != sai.TrendRising {
		t.Errorf("ECM topic trend = %v (slope %.3f), want rising", trend.Direction, trend.Slope)
	}
	// Error paths.
	if _, err := fw.TopicTrend(context.Background(), nil, SocialInput{}); err == nil {
		t.Error("empty tags accepted")
	}
	bare, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.TopicTrend(context.Background(), []string{"x"}, SocialInput{}); err == nil {
		t.Error("trend without searcher accepted")
	}
}
