package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

func stateThreat() *tara.ThreatScenario {
	return &tara.ThreatScenario{
		ID: "TS-ECM-01", Name: "ECM reprogramming",
		DamageIDs: []string{"DS-01"},
		Property:  tara.PropertyIntegrity,
		STRIDE:    tara.Tampering,
		Profiles:  []tara.AttackerProfile{tara.ProfileInsider},
		Vector:    tara.VectorPhysical,
		Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

// TestResultStateRoundtrip: a real workflow result survives the
// export → JSON → restore cycle with every consumer-visible field
// intact (threat scenarios resolving back to the live pointers).
func TestResultStateRoundtrip(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	threats := []*tara.ThreatScenario{stateThreat()}
	in := SocialInput{Threats: threats}
	orig, err := fw.RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	st, err := ExportResult(orig)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ResultState
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreResult(&decoded, threats)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Index, orig.Index) {
		t.Errorf("index diverged:\n got %+v\nwant %+v", got.Index.Entries, orig.Index.Entries)
	}
	if !reflect.DeepEqual(got.OutsiderTable, orig.OutsiderTable) {
		t.Error("outsider table diverged")
	}
	if len(orig.Learned) > 0 && !reflect.DeepEqual(got.Learned, orig.Learned) {
		t.Errorf("learned diverged: %v vs %v", got.Learned, orig.Learned)
	}
	if !reflect.DeepEqual(got.Keywords.Groups(), orig.Keywords.Groups()) {
		t.Error("keyword groups diverged")
	}
	if got.InauthenticFiltered != orig.InauthenticFiltered ||
		!got.Since.Equal(orig.Since) || !got.Until.Equal(orig.Until) {
		t.Error("scalar fields diverged")
	}
	if len(got.Tunings) != len(orig.Tunings) {
		t.Fatalf("%d tunings, want %d", len(got.Tunings), len(orig.Tunings))
	}
	for i, tuning := range got.Tunings {
		want := orig.Tunings[i]
		if tuning.Threat != want.Threat {
			t.Errorf("tuning %d: threat not resolved to the live scenario", i)
		}
		if tuning.Insider != want.Insider || tuning.Posts != want.Posts ||
			!reflect.DeepEqual(tuning.VectorShares, want.VectorShares) ||
			!reflect.DeepEqual(tuning.Factors, want.Factors) ||
			!reflect.DeepEqual(tuning.Table, want.Table) {
			t.Errorf("tuning %d diverged", i)
		}
	}

	// A state referencing a scenario the input no longer carries is
	// stale, not silently restorable.
	if _, err := RestoreResult(&decoded, nil); err == nil {
		t.Error("restore against missing threats must fail")
	}
}

// TestFillStateRoundtrip: exported fills rehydrated into a fresh cache
// serve a whole delta run without a single backend query, producing an
// identical result.
func TestFillStateRoundtrip(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	in := SocialInput{Threats: []*tara.ThreatScenario{stateThreat()}}
	ctx := context.Background()

	rc := NewResultCache(store)
	want, err := fw.RunSocialDelta(ctx, in, rc)
	if err != nil {
		t.Fatal(err)
	}
	fills := rc.ExportFills()
	if len(fills) == 0 {
		t.Fatal("run produced no fills to export")
	}
	wire, err := json.Marshal(fills)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []FillState
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}

	counting := &countingSearcher{inner: store}
	rc2 := NewResultCache(counting)
	if restored := rc2.ImportFills(decoded, store.Post); restored != len(fills) {
		t.Fatalf("restored %d fills, want %d", restored, len(fills))
	}
	got, err := fw.RunSocialDelta(ctx, in, rc2)
	if err != nil {
		t.Fatal(err)
	}
	if n := counting.calls.Load(); n != 0 {
		t.Errorf("restored cache still queried the backend %d times", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("run over restored fills diverged from the original")
	}

	// A fill pointing at a post the store lost is dropped, not half
	// restored.
	broken := append([]FillState(nil), decoded...)
	broken[0].PostIDs = append([]string{"no-such-post"}, broken[0].PostIDs...)
	rc3 := NewResultCache(store)
	if restored := rc3.ImportFills(broken, store.Post); restored != len(broken)-1 {
		t.Fatalf("restored %d fills from a broken export, want %d", restored, len(broken)-1)
	}
}
