package psp

import (
	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/report"
)

// RenderVectorTable renders an attack-vector feasibility table in the
// layout of the paper's Fig. 5 / Fig. 9.
func RenderVectorTable(t *VectorTable) string { return report.VectorTable(t) }

// RenderCALTable renders a CAL determination matrix (Fig. 6 layout).
func RenderCALTable(t *CALTable) string { return report.CALTable(t) }

// RenderSAIChart renders a Social Attraction Index bar chart (Fig. 12
// layout).
func RenderSAIChart(idx *SAIIndex, title string) (string, error) {
	return report.SAIChart(idx, title)
}

// RenderSAITable renders a Social Attraction Index with probabilities.
func RenderSAITable(idx *SAIIndex, title string) string {
	return report.SAITable(idx, title)
}

// RenderTuningComparison renders the Fig. 8 A/B outsider-vs-insider
// weight comparison for one threat tuning.
func RenderTuningComparison(outsider *VectorTable, tuning *ThreatTuning) string {
	return report.TuningComparison(outsider, tuning)
}

// RenderTrendChart renders a quarterly topic trend with its fitted
// direction.
func RenderTrendChart(trend *Trend, title string) (string, error) {
	return report.TrendChart(trend, title)
}

// RenderBEPDiagram renders a break-even curve (Fig. 11 layout).
func RenderBEPDiagram(curve *finance.BEPCurve, title string) (string, error) {
	return report.BEPDiagram(curve, title)
}

// RenderFinancialSummary renders the financial workflow outputs with the
// Equation 6/7 quantities.
func RenderFinancialSummary(res *FinancialResult, title string) string {
	return report.FinancialSummary(res, title)
}
